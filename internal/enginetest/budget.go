package enginetest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/lowsched"
	"repro/internal/machine"
	"repro/internal/refexec"
	"repro/internal/trace"
)

// Budgets is the gas-meter half of the conformance suite: with an
// iteration budget B on the claim path, a run must execute exactly
// min(total iterations, B) iterations — the oracle-predicted stop point
// — on every scheme and batch factor, because the crossing claim
// truncates to its allowed prefix and records the remainder pending.
// Every executed iteration must still be exactly-once and a member of
// the sequential oracle's multiset. A budget at or above the total must
// not perturb the run at all: same report, same iteration count, and
// (checked separately below) the same virtual-time makespan as a run
// with no budget configured, pinning the meter's zero-cost-when-idle
// contract structurally rather than statistically.
func Budgets(t *testing.T, name string, f Factory) {
	schemes := []lowsched.Scheme{
		lowsched.SS{}, lowsched.CSS{K: 3}, lowsched.GSS{}, lowsched.TFSS{},
	}
	batches := []int{1, 8}
	nest := loopir.MustBuild(func(b *loopir.B) {
		b.Doall("I", loopir.Const(3), func(b *loopir.B) {
			b.DoallLeaf("B", loopir.Const(16), work(7))
		})
	})
	prog, pl, ref := compile(t, nest)
	total := ref.Iterations // 48

	budgets := []int64{1, 5, 17, total - 1, total, total + 25}
	for _, s := range schemes {
		for _, batch := range batches {
			for _, B := range budgets {
				t.Run(fmt.Sprintf("%s/b=%d/B=%d", s.Name(), batch, B), func(t *testing.T) {
					intr := machine.NewInterrupt()
					log := trace.New()
					rep, err := core.RunPlan(pl, core.Config{
						Engine:     f(4, intr),
						Scheme:     s,
						Interrupt:  intr,
						Tracer:     log,
						ClaimBatch: batch,
						Budget:     &core.Budget{Iterations: B},
					})
					var got int64
					for _, n := range iterMultiset(log) {
						got += int64(n)
					}
					if B >= total {
						// Enough budget: the run completes untouched.
						if err != nil {
							t.Fatalf("budgeted run (B=%d >= %d) failed: %v", B, total, err)
						}
						if rep.Stats.Iterations != total {
							t.Errorf("iterations = %d, want %d", rep.Stats.Iterations, total)
						}
						ctx := refexec.Context{Nest: "budget", Scheme: s.Name(), Engine: name}
						if err := log.VerifyExactlyOnceIn(prog, ref, ctx); err != nil {
							t.Error(err)
						}
						return
					}
					// Exhaustion: typed error, oracle-exact stop point.
					var be *core.BudgetExceededError
					if !errors.As(err, &be) {
						t.Fatalf("run returned %v, want BudgetExceededError", err)
					}
					if !errors.Is(err, core.ErrBudgetExceeded) {
						t.Errorf("error does not match ErrBudgetExceeded")
					}
					if be.Iterations != B {
						t.Errorf("consumed %d iterations, want the whole budget %d", be.Iterations, B)
					}
					if be.Snapshot != nil {
						t.Errorf("plain budgeted run carries a snapshot (no checkpoint seam configured)")
					}
					if got != B {
						t.Errorf("executed %d iterations, want exactly the budget %d", got, B)
					}
					// Every executed iteration is exactly-once.
					for key, n := range iterMultiset(log) {
						if n != 1 {
							t.Errorf("iteration %s executed %d times", key, n)
						}
					}
				})
			}
		}
	}
}

// BudgetResume extends the budget contract to the checkpoint seam: a
// budgeted run configured checkpointable must surface exhaustion with a
// resumable snapshot, and resuming it (without a budget) must complete
// the program with the exact uninterrupted iteration multiset — nothing
// lost at the truncated claim, nothing repeated. The suite asserts that
// at least one exhaustion left pending (claimed-but-unexecuted) ranges
// in the snapshot, so the truncation path cannot silently go untested.
func BudgetResume(t *testing.T, name string, f Factory) {
	schemes := []lowsched.Scheme{lowsched.SS{}, lowsched.CSS{K: 3}, lowsched.GSS{}}
	batches := []int{1, 8}
	nest := loopir.MustBuild(func(b *loopir.B) {
		b.Doall("I", loopir.Const(4), func(b *loopir.B) {
			b.DoallLeaf("B", loopir.Const(12), work(9))
		})
	})
	prog, pl, ref := compile(t, nest)
	const p = 4

	sawPending := false
	for _, s := range schemes {
		for _, batch := range batches {
			for _, B := range []int64{7, 23} {
				t.Run(fmt.Sprintf("%s/b=%d/B=%d", s.Name(), batch, B), func(t *testing.T) {
					// Uninterrupted baseline.
					fullLog := trace.New()
					intr := machine.NewInterrupt()
					_, err := core.RunPlan(pl, core.Config{
						Engine: f(p, intr), Scheme: s, Tracer: fullLog,
						Interrupt: intr, ClaimBatch: batch,
					})
					if err != nil {
						t.Fatalf("uninterrupted run: %v", err)
					}
					ctx := refexec.Context{Nest: "budget-resume", Scheme: s.Name(), Engine: name}
					if err := fullLog.VerifyExactlyOnceIn(prog, ref, ctx); err != nil {
						t.Fatal(err)
					}

					// Part one: run out of budget with the checkpoint seam on.
					partLog := trace.New()
					intr = machine.NewInterrupt()
					_, err = core.RunPlan(pl, core.Config{
						Engine: f(p, intr), Scheme: s, Tracer: partLog,
						Interrupt: intr, ClaimBatch: batch,
						Budget:     &core.Budget{Iterations: B},
						Checkpoint: &core.CheckpointConfig{},
					})
					var be *core.BudgetExceededError
					if !errors.As(err, &be) {
						t.Fatalf("budgeted run returned %v, want BudgetExceededError", err)
					}
					if be.Snapshot == nil {
						t.Fatalf("checkpointable budgeted run carries no snapshot")
					}
					if be.Iterations != B {
						t.Errorf("consumed %d, want %d", be.Iterations, B)
					}
					for _, icb := range be.Snapshot.ICBs {
						if len(icb.Pending) > 0 {
							sawPending = true
						}
					}

					// Part two: resume without a budget, run to completion.
					restLog := trace.New()
					intr = machine.NewInterrupt()
					_, err = core.RunPlan(pl, core.Config{
						Engine: f(p, intr), Scheme: s, Tracer: restLog,
						Interrupt: intr, ClaimBatch: batch,
						Checkpoint: &core.CheckpointConfig{Restore: be.Snapshot},
					})
					if err != nil {
						t.Fatalf("resume: %v", err)
					}

					want := iterMultiset(fullLog)
					got := iterMultiset(partLog)
					for key, n := range iterMultiset(restLog) {
						got[key] += n
					}
					for key, n := range want {
						if got[key] != n {
							t.Errorf("iteration %s executed %d time(s) across the parts, want %d", key, got[key], n)
						}
					}
					for key := range got {
						if _, ok := want[key]; !ok {
							t.Errorf("parts executed %s, absent from the uninterrupted run", key)
						}
					}
				})
			}
		}
	}
	if !sawPending {
		t.Errorf("no exhaustion in the matrix left pending ranges; the truncated-claim path went unexercised")
	}
}

// BudgetIdentity pins the zero-cost-when-unset contract on the
// deterministic engine: a nil budget, a zero budget and an
// over-provisioned budget must all produce the identical run — same
// makespan, same stats — because the meter charges no machine time.
// (The benchsuite seed gate checks the same property against
// BENCH_seed.json at the repository level.)
func BudgetIdentity(t *testing.T, name string, f Factory) {
	_, pl, _ := compile(t, loopir.MustBuild(func(b *loopir.B) {
		b.Doall("I", loopir.Const(3), func(b *loopir.B) {
			b.DoallLeaf("B", loopir.Const(16), work(7))
		})
	}))
	run := func(bud *core.Budget, batch int) *core.Report {
		t.Helper()
		intr := machine.NewInterrupt()
		rep, err := core.RunPlan(pl, core.Config{
			Engine: f(4, intr), Scheme: lowsched.GSS{}, Interrupt: intr,
			ClaimBatch: batch, Budget: bud,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rep
	}
	for _, batch := range []int{1, 8} {
		base := run(nil, batch)
		for label, bud := range map[string]*core.Budget{
			"zero":  {},
			"ample": {Iterations: 1 << 40, Time: 1 << 50},
		} {
			got := run(bud, batch)
			if got.Makespan != base.Makespan {
				t.Errorf("b=%d %s budget: makespan %d, unbudgeted %d", batch, label, got.Makespan, base.Makespan)
			}
			if got.Stats != base.Stats {
				t.Errorf("b=%d %s budget: stats diverge from the unbudgeted run", batch, label)
			}
		}
	}
}
