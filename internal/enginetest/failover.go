package enginetest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/lowsched"
	"repro/internal/machine"
	"repro/internal/trace"
)

// FailoverRestore is the cluster-failover half of the resume suite: it
// models a run whose owning node dies mid-leg. The run executes as a
// chain of periodic-snapshot legs (claim every k chunks, park a
// snapshot, continue); node death discards whatever the in-flight leg
// had done past the last parked snapshot, and the survivor restores
// from that snapshot and runs to completion. The contract, across
// schemes × batch factors:
//
//   - the surviving history — every completed leg plus the restored
//     remainder — executes exactly the uninterrupted run's iteration
//     multiset (the discarded partial leg's effects died with its node,
//     so they must not be counted or required);
//   - the restored run's cumulative totals land bit-exactly on the
//     uninterrupted run's (snapshots carry the statistics baseline);
//   - restoring the same snapshot twice is deterministic on the virtual
//     engine — two survivors racing a restore would compute the same
//     trajectory, which is what makes failover idempotent to observe.
func FailoverRestore(t *testing.T, name string, f Factory) {
	schemes := []lowsched.Scheme{
		lowsched.SS{}, lowsched.CSS{K: 3}, lowsched.GSS{},
		lowsched.FAC2{}, adapt.Auto{},
	}
	batches := []int{1, 2, 8}
	nest := loopir.MustBuild(func(b *loopir.B) {
		b.Doall("I", loopir.Const(6), func(b *loopir.B) {
			b.DoallLeaf("B", loopir.Const(16), work(10))
		})
	})
	_, pl, _ := compile(t, nest)
	const p = 4
	const k = 3 // snapshot period in chunk claims

	for _, s := range schemes {
		for _, batch := range batches {
			t.Run(fmt.Sprintf("%s/b=%d", s.Name(), batch), func(t *testing.T) {
				// Uninterrupted baseline.
				fullLog := trace.New()
				intr := machine.NewInterrupt()
				full, err := core.RunPlan(pl, core.Config{
					Engine: f(p, intr), Scheme: s, Pool: core.PoolSingleList,
					Tracer: fullLog, Interrupt: intr, ClaimBatch: batch,
				})
				if err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}

				// Leg 1 completes and parks snapshot S1; leg 2 starts from S1
				// and parks S2 — the last restore point the journal holds.
				leg := func(restore *core.RunSnapshot, tr *trace.Log) *core.CheckpointedError {
					intr := machine.NewInterrupt()
					_, err := core.RunPlan(pl, core.Config{
						Engine: f(p, intr), Scheme: s, Pool: core.PoolSingleList,
						Tracer: tr, Interrupt: intr, ClaimBatch: batch,
						Checkpoint: &core.CheckpointConfig{AfterChunks: k, Restore: restore},
					})
					var cke *core.CheckpointedError
					if !errors.As(err, &cke) {
						t.Fatalf("leg returned %v, want CheckpointedError", err)
					}
					return cke
				}
				leg1 := trace.New()
				s1 := leg(nil, leg1)
				leg2 := trace.New()
				s2 := leg(s1.Snapshot, leg2)

				// Leg 3 runs on the doomed node: its work past S2 is lost.
				// Running it at all (then discarding the trace) mirrors the
				// real failure — the dead node did execute those iterations.
				leg(s2.Snapshot, trace.New())

				// Failover: a survivor restores S2 and runs to completion.
				restoreFrom := func() (*core.Report, *trace.Log) {
					tr := trace.New()
					intr := machine.NewInterrupt()
					rep, err := core.RunPlan(pl, core.Config{
						Engine: f(p, intr), Scheme: s, Pool: core.PoolSingleList,
						Tracer: tr, Interrupt: intr, ClaimBatch: batch,
						Checkpoint: &core.CheckpointConfig{Restore: s2.Snapshot},
					})
					if err != nil {
						t.Fatalf("failover restore: %v", err)
					}
					return rep, tr
				}
				rep, rest := restoreFrom()

				// Surviving history == uninterrupted multiset.
				want := iterMultiset(fullLog)
				got := iterMultiset(leg1)
				for key, n := range iterMultiset(leg2) {
					got[key] += n
				}
				for key, n := range iterMultiset(rest) {
					got[key] += n
				}
				if len(got) != len(want) {
					t.Errorf("surviving history covers %d iterations, uninterrupted run %d", len(got), len(want))
				}
				for key, n := range want {
					if got[key] != n {
						t.Errorf("iteration %s survives %d time(s), want %d", key, got[key], n)
					}
				}

				// Restored totals land on the uninterrupted run's exactly.
				fs, gs := full.Stats, rep.Stats
				if gs.Iterations != fs.Iterations || gs.Instances != fs.Instances ||
					gs.Enters != fs.Enters || gs.Exits != fs.Exits || gs.ZeroTrips != fs.ZeroTrips {
					t.Errorf("restored totals diverge:\nrestored      %+v\nuninterrupted %+v", gs, fs)
				}
				if _, auto := s.(adapt.Auto); !auto && gs.Chunks != fs.Chunks {
					t.Errorf("restored chunk trajectory %d, uninterrupted %d", gs.Chunks, fs.Chunks)
				}

				// Restore determinism: a second survivor computing the same
				// restore covers the identical iteration multiset; on the
				// virtual engine the whole statistics vector is bit-identical
				// (real-engine timing figures legitimately vary).
				rep2, rest2 := restoreFrom()
				if name == "virtual" && rep2.Stats != rep.Stats {
					t.Errorf("second restore diverged:\nfirst  %+v\nsecond %+v", rep.Stats, rep2.Stats)
				}
				m1, m2 := iterMultiset(rest), iterMultiset(rest2)
				if len(m1) != len(m2) {
					t.Errorf("restores execute %d vs %d distinct iterations", len(m1), len(m2))
				}
				for key, n := range m1 {
					if m2[key] != n {
						t.Errorf("restores disagree on iteration %s: %d vs %d", key, n, m2[key])
					}
				}
			})
		}
	}
}
