package loopir

import (
	"fmt"
	"strings"
	"testing"
)

func TestSectionsLowering(t *testing.T) {
	nest, err := Build(func(b *B) {
		b.Sections("PAR",
			func(b *B) { b.DoallLeaf("S1", Const(2), func(Env, IVec, int64) {}) },
			func(b *B) { b.DoallLeaf("S2", Const(3), func(Env, IVec, int64) {}) },
			func(b *B) { b.DoallLeaf("S3", Const(4), func(Env, IVec, int64) {}) },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	root := nest.Root[0]
	if root.Kind != KindDoall || root.Label != "PAR" {
		t.Fatalf("lowering root = %v %q", root.Kind, root.Label)
	}
	if b, ok := root.Bound.IsStatic(); !ok || b != 3 {
		t.Errorf("sections bound = %v, want 3", root.Bound)
	}
	// The body is an IF ladder dispatching on the section index.
	ladder := root.Body[0]
	if ladder.Kind != KindIf {
		t.Fatalf("sections body kind = %v", ladder.Kind)
	}
	if !ladder.Cond(IVec{1}) || ladder.Cond(IVec{2}) {
		t.Error("first rung should select index 1 only")
	}
}

func TestSectionsDispatchSemantics(t *testing.T) {
	var ran []string
	nest := MustBuild(func(b *B) {
		b.Sections("PAR",
			func(b *B) {
				b.Stmt("a", func(e Env, iv IVec) { ran = append(ran, fmt.Sprintf("a%v", iv)) })
			},
			func(b *B) {
				b.Stmt("b", func(e Env, iv IVec) { ran = append(ran, fmt.Sprintf("b%v", iv)) })
			},
		)
	})
	std, err := nest.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	// Interpret both iterations of the lowered Doall sequentially.
	e := &recEnv{}
	var exec func(nodes []*Node, iv IVec)
	exec = func(nodes []*Node, iv IVec) {
		for _, nd := range nodes {
			switch {
			case nd.IsLeaf():
				b := nd.Bound.Eval(iv)
				for j := int64(1); j <= b; j++ {
					nd.Iter(e, iv, j)
				}
			case nd.Kind == KindIf:
				if nd.Cond(iv) {
					exec(nd.Then, iv)
				} else {
					exec(nd.Else, iv)
				}
			default:
				b := nd.Bound.Eval(iv)
				for k := int64(1); k <= b; k++ {
					exec(nd.Body, append(iv.Clone(), k))
				}
			}
		}
	}
	exec(std.Root, nil)
	if fmt.Sprint(ran) != "[a(1) b(2)]" {
		t.Errorf("sections dispatch = %v, want [a(1) b(2)]", ran)
	}
}

func TestSectionsSingle(t *testing.T) {
	nest, err := Build(func(b *B) {
		b.Sections("ONE", func(b *B) {
			b.DoallLeaf("S", Const(2), func(Env, IVec, int64) {})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := nest.Root[0].Bound.IsStatic(); b != 1 {
		t.Errorf("single-section bound = %d", b)
	}
}

func TestSectionsErrors(t *testing.T) {
	if _, err := Build(func(b *B) { b.Sections("P") }); err == nil ||
		!strings.Contains(err.Error(), "no sections") {
		t.Errorf("no-sections error = %v", err)
	}
	if _, err := Build(func(b *B) {
		b.Sections("P", func(b *B) {}, func(b *B) {
			b.DoallLeaf("S", Const(1), func(Env, IVec, int64) {})
		})
	}); err == nil || !strings.Contains(err.Error(), "section 1 is empty") {
		t.Errorf("empty-section error = %v", err)
	}
	if _, err := Build(func(b *B) {
		b.Sections("P",
			func(b *B) { b.DoallLeaf("S", Const(1), func(Env, IVec, int64) {}) },
			func(b *B) {})
	}); err == nil || !strings.Contains(err.Error(), "section 2 is empty") {
		t.Errorf("empty-last-section error = %v", err)
	}
}
