package loopir

import (
	"fmt"
	"strings"
)

// IsPure reports whether the node contains no parallel construct: scalar
// statements, serial loops over pure bodies, and IFs with pure branches.
// Pure code needs only one processor and is treated as scalar code by
// standardization.
func IsPure(nd *Node) bool {
	switch nd.Kind {
	case KindStmt:
		return true
	case KindSerial:
		return isPureSeq(nd.Body)
	case KindIf:
		return isPureSeq(nd.Then) && isPureSeq(nd.Else)
	default:
		return false
	}
}

func isPureSeq(nodes []*Node) bool {
	for _, nd := range nodes {
		if !IsPure(nd) {
			return false
		}
	}
	return true
}

// RunPure sequentially interprets a pure construct sequence with enclosing
// indexes iv. It is used by the iteration bodies synthesized during
// standardization and by the reference executor.
func RunPure(e Env, nodes []*Node, iv IVec) {
	for _, nd := range nodes {
		switch nd.Kind {
		case KindStmt:
			nd.Run(e, iv)
		case KindSerial:
			b := nd.Bound.Eval(iv)
			for k := int64(1); k <= b; k++ {
				RunPure(e, nd.Body, append(iv.Clone(), k))
			}
		case KindIf:
			if nd.Cond(iv) {
				RunPure(e, nd.Then, iv)
			} else {
				RunPure(e, nd.Else, iv)
			}
		default:
			panic(fmt.Sprintf("loopir: %v %q inside pure code", nd.Kind, nd.Label))
		}
	}
}

// Standardize returns a new nest in which every execution path ends in an
// innermost parallel loop (Fig. 2 of the paper):
//
//   - maximal runs of pure constructs become special Doall leaves with
//     bound 1 whose body interprets the run sequentially;
//   - a parallel loop whose body is entirely pure becomes a leaf whose
//     iteration body interprets the pure code (inner serial loops fold
//     into the iteration, like loop J4 folding into loop J in Fig. 2);
//   - IF constructs with an empty THEN branch are normalized by negating
//     the condition, so the THEN branch of a standardized IF is never
//     empty.
//
// The input nest is not modified; node IDs are preserved for surviving
// nodes and fresh IDs are assigned to synthesized leaves. Standardize is
// idempotent.
func (n *Nest) Standardize() (*Nest, error) {
	out := &Nest{nextID: n.nextID, Standardized: true}
	out.Root = out.standardizeSeq(cloneSeq(n.Root))
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: standardization produced invalid nest: %w", err)
	}
	return out, nil
}

func cloneSeq(nodes []*Node) []*Node {
	out := make([]*Node, len(nodes))
	for i, nd := range nodes {
		c := *nd
		c.Body = cloneSeq(nd.Body)
		c.Then = cloneSeq(nd.Then)
		c.Else = cloneSeq(nd.Else)
		out[i] = &c
	}
	return out
}

func (n *Nest) standardizeSeq(nodes []*Node) []*Node {
	var out []*Node
	var run []*Node // pending pure constructs
	flush := func() {
		if len(run) == 0 {
			return
		}
		out = append(out, n.wrapScalar(run))
		run = nil
	}
	for _, nd := range nodes {
		if IsPure(nd) {
			run = append(run, nd)
			continue
		}
		flush()
		switch nd.Kind {
		case KindDoall:
			switch {
			case nd.IsLeaf():
				out = append(out, nd)
			case isPureSeq(nd.Body):
				out = append(out, leafFromPureBody(nd))
			default:
				nd.Body = n.standardizeSeq(nd.Body)
				out = append(out, nd)
			}
		case KindDoacross:
			out = append(out, nd) // validation guarantees leaf form
		case KindSerial:
			nd.Body = n.standardizeSeq(nd.Body)
			out = append(out, nd)
		case KindIf:
			nd.Then = n.standardizeSeq(nd.Then)
			nd.Else = n.standardizeSeq(nd.Else)
			if len(nd.Then) == 0 {
				cond := nd.Cond
				nd.Cond = func(iv IVec) bool { return !cond(iv) }
				nd.Then, nd.Else = nd.Else, nil
				nd.Label = nd.Label + "!"
			}
			out = append(out, nd)
		default:
			panic(fmt.Sprintf("loopir: unexpected kind %v", nd.Kind))
		}
	}
	flush()
	return out
}

// wrapScalar turns a run of pure constructs into the paper's "special
// parallel loop with loop upper bound being 1".
func (n *Nest) wrapScalar(run []*Node) *Node {
	labels := make([]string, len(run))
	for i, nd := range run {
		labels[i] = nd.Label
	}
	return &Node{
		ID:    n.NewID(),
		Kind:  KindDoall,
		Label: "scalar(" + strings.Join(labels, ",") + ")",
		Bound: Const(1),
		Iter: func(e Env, iv IVec, _ int64) {
			RunPure(e, run, iv)
		},
	}
}

// leafFromPureBody converts a parallel loop over pure code into a leaf:
// the pure body (possibly containing serial loops) becomes the iteration
// body, evaluated with the loop's own index appended to the index vector.
func leafFromPureBody(nd *Node) *Node {
	body := nd.Body
	nd.Body = nil
	nd.Iter = func(e Env, iv IVec, j int64) {
		RunPure(e, body, append(iv.Clone(), j))
	}
	return nd
}

// Coalesce returns a new nest in which every structural Doall loop whose
// body is exactly one Doall leaf with a static bound is merged with that
// leaf into a single leaf over the product iteration space (the paper's
// implicit loop coalescing, Fig. 3: loops K1 and K2 coalesce into K when
// the inner bound P2 does not depend on K1). Applied bottom-up, so
// perfect nests of any depth coalesce fully. Requires a standardized nest.
func (n *Nest) Coalesce() (*Nest, error) {
	if !n.Standardized {
		return nil, fmt.Errorf("loopir: Coalesce requires a standardized nest")
	}
	out := &Nest{nextID: n.nextID, Standardized: true}
	out.Root = out.coalesceSeq(cloneSeq(n.Root))
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: coalescing produced invalid nest: %w", err)
	}
	return out, nil
}

func (n *Nest) coalesceSeq(nodes []*Node) []*Node {
	for i, nd := range nodes {
		switch nd.Kind {
		case KindIf:
			nd.Then = n.coalesceSeq(nd.Then)
			nd.Else = n.coalesceSeq(nd.Else)
		default:
			if len(nd.Body) > 0 {
				nd.Body = n.coalesceSeq(nd.Body)
			}
		}
		nodes[i] = n.tryCoalesce(nd)
	}
	return nodes
}

func (n *Nest) tryCoalesce(nd *Node) *Node {
	if nd.Kind != KindDoall || nd.IsLeaf() || len(nd.Body) != 1 {
		return nd
	}
	inner := nd.Body[0]
	if inner.Kind != KindDoall || !inner.IsLeaf() {
		return nd
	}
	p2, static := inner.Bound.IsStatic()
	if !static {
		return nd // inner bound may depend on the outer index: not coalescible
	}
	outerBound := nd.Bound
	var bound Bound
	if p1, ok := outerBound.IsStatic(); ok {
		bound = Const(p1 * p2)
	} else {
		bound = BoundFn(func(iv IVec) int64 { return outerBound.Eval(iv) * p2 })
	}
	innerIter := inner.Iter
	leaf := &Node{
		ID:    n.NewID(),
		Kind:  KindDoall,
		Label: nd.Label + "*" + inner.Label,
		Bound: bound,
		Iter: func(e Env, iv IVec, j int64) {
			// Recover the original indexes: j ranges over the product
			// space in row-major order (K1 outer, K2 inner).
			k1 := (j-1)/p2 + 1
			k2 := (j-1)%p2 + 1
			innerIter(e, append(iv.Clone(), k1), k2)
		},
	}
	return leaf
}

// String renders the nest in the style of the paper's Fig. 1: parallel
// loops with a solid bracket marker "[|", serial loops with a dashed
// marker "[:", leaves flagged with "*".
func (n *Nest) String() string {
	var sb strings.Builder
	var rec func(nodes []*Node, indent string)
	rec = func(nodes []*Node, indent string) {
		for _, nd := range nodes {
			switch nd.Kind {
			case KindDoall, KindDoacross:
				star := ""
				if nd.IsLeaf() {
					star = "*"
				}
				extra := ""
				if nd.Kind == KindDoacross {
					extra = fmt.Sprintf(" (doacross d=%d)", nd.Dist)
				}
				fmt.Fprintf(&sb, "%s[| %s%s = 1..%v%s\n", indent, nd.Label, star, nd.Bound, extra)
				rec(nd.Body, indent+"    ")
			case KindSerial:
				fmt.Fprintf(&sb, "%s[: %s = 1..%v (serial)\n", indent, nd.Label, nd.Bound)
				rec(nd.Body, indent+"    ")
			case KindIf:
				fmt.Fprintf(&sb, "%sif %s then\n", indent, nd.Label)
				rec(nd.Then, indent+"    ")
				if len(nd.Else) > 0 {
					fmt.Fprintf(&sb, "%selse\n", indent)
					rec(nd.Else, indent+"    ")
				}
				fmt.Fprintf(&sb, "%send if\n", indent)
			case KindStmt:
				fmt.Fprintf(&sb, "%s%s (stmt)\n", indent, nd.Label)
			}
		}
	}
	rec(n.Root, "")
	return sb.String()
}
