// Package loopir defines the intermediate representation for general
// parallel nested loops (Section II-B of the paper) and the source-level
// transformations the paper's scheme relies on: standardization (Fig. 2)
// and implicit loop coalescing (Fig. 3).
//
// A general parallel nested loop is a sequence of constructs, each of which
// is one of:
//
//   - a Doall loop (parallel, no cross-iteration dependences),
//   - a Doacross loop (parallel with a cross-iteration dependence of
//     constant distance; innermost only — see below),
//   - a serial loop,
//   - an IF-THEN-ELSE whose branches are themselves construct sequences,
//   - a scalar statement (arbitrary sequential code).
//
// Loops nest in any order, loop bounds may be functions of the indexes of
// enclosing loops, and iteration execution time is arbitrary.
//
// Standardization rewrites a nest so that every schedulable leaf is a
// parallel loop: scalar statements (and serial loops whose bodies contain
// no parallel constructs) are folded into special parallel loops with
// bound 1, and serial loops nested inside an otherwise-innermost parallel
// loop are folded into that loop's iteration body, exactly as in Fig. 2.
//
// Doacross loops are supported only as innermost (leaf) loops: the paper's
// high-level algorithms give outer parallel loops barrier (Doall)
// semantics via BAR_COUNT, so an outer loop carrying a cross-iteration
// dependence must be expressed as a serial loop instead.
package loopir

import (
	"fmt"
	"strings"
)

// IVec is an index vector: the values (1-based) of the enclosing loops'
// indexes, outermost first. Bound and condition functions receive the
// indexes of the loops enclosing them; iteration bodies additionally
// receive their own loop index as a separate argument.
type IVec []int64

// Clone returns a copy of the vector.
func (iv IVec) Clone() IVec {
	out := make(IVec, len(iv))
	copy(out, iv)
	return out
}

// String renders the vector like "(2,1,3)".
func (iv IVec) String() string {
	parts := make([]string, len(iv))
	for i, v := range iv {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Env is the execution environment handed to iteration bodies. The
// two-level scheduler passes its per-processor context; the sequential
// reference executor passes a trivial implementation.
type Env interface {
	// Work accounts cost units of useful computation (virtual time on the
	// simulated machine, calibrated busy-work on the real one).
	Work(cost int64)
	// Proc returns the executing processor's ID.
	Proc() int
	// NumProcs returns the machine's processor count.
	NumProcs() int
	// AwaitDep blocks until the cross-iteration dependence source of this
	// iteration (iteration j-dist of the same Doacross instance) has
	// posted. It is a no-op for Doall bodies and for j <= dist.
	AwaitDep()
	// PostDep marks this iteration's dependence source as executed,
	// releasing iteration j+dist. Called automatically at body completion
	// if the body never calls it.
	PostDep()
}

// BodyFn is the iteration body of an innermost parallel loop: it executes
// iteration j (1-based) with enclosing indexes iv.
type BodyFn func(e Env, iv IVec, j int64)

// StmtFn is a scalar statement: sequential code executed once per
// activation with enclosing indexes iv.
type StmtFn func(e Env, iv IVec)

// CondFn evaluates an IF condition given the enclosing indexes.
type CondFn func(iv IVec) bool

// Bound describes a loop's upper bound: iterations run from 1 to the bound
// value. A bound may be a compile-time constant or a function of the
// enclosing indexes (like the paper's BOUND entries, which hold either an
// integer or a pointer to an expression).
type Bound struct {
	fn     func(iv IVec) int64
	static int64
	isStat bool
}

// Const returns a constant bound.
func Const(n int64) Bound { return Bound{static: n, isStat: true} }

// BoundFn returns a bound computed from the enclosing indexes.
func BoundFn(f func(iv IVec) int64) Bound { return Bound{fn: f} }

// Eval returns the bound value for the given enclosing indexes.
// Negative values are clamped to 0 (a zero-trip loop).
func (b Bound) Eval(iv IVec) int64 {
	var n int64
	if b.isStat {
		n = b.static
	} else if b.fn != nil {
		n = b.fn(iv)
	} else {
		panic("loopir: uninitialized Bound")
	}
	if n < 0 {
		return 0
	}
	return n
}

// IsStatic reports whether the bound is a compile-time constant, and if so
// its value. Coalescing requires a static inner bound.
func (b Bound) IsStatic() (int64, bool) { return b.static, b.isStat }

// Valid reports whether the bound was properly constructed.
func (b Bound) Valid() bool { return b.isStat || b.fn != nil }

func (b Bound) String() string {
	if b.isStat {
		return fmt.Sprint(b.static)
	}
	return "f(...)"
}

// Kind discriminates node types.
type Kind uint8

// Node kinds.
const (
	KindDoall Kind = iota
	KindDoacross
	KindSerial
	KindIf
	KindStmt
)

var kindNames = [...]string{
	KindDoall: "doall", KindDoacross: "doacross", KindSerial: "serial",
	KindIf: "if", KindStmt: "stmt",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsLoop reports whether the kind is a loop construct.
func (k Kind) IsLoop() bool {
	return k == KindDoall || k == KindDoacross || k == KindSerial
}

// IsParallel reports whether the kind is a parallel loop.
func (k Kind) IsParallel() bool { return k == KindDoall || k == KindDoacross }

// Node is one construct of a nest.
type Node struct {
	// ID is unique within a Nest; assigned by the builder.
	ID int
	// Kind discriminates the variant; the fields below are used per kind.
	Kind Kind
	// Label names the construct for diagnostics and figure dumps.
	Label string

	// Loop fields (KindDoall, KindDoacross, KindSerial).
	Bound Bound
	// Dist is the Doacross dependence distance (>= 1).
	Dist int64
	// Body is the loop body: a sequence of constructs executed in order.
	// Empty for a leaf parallel loop built directly with an Iter function.
	Body []*Node
	// Iter is the iteration body of an innermost (leaf) parallel loop.
	// Exactly one of Iter and Body is set for parallel loops; serial loops
	// always use Body.
	Iter BodyFn
	// ManualSync, for Doacross leaves, declares that the iteration body
	// drives the cross-iteration synchronization itself via Env.AwaitDep
	// and Env.PostDep (placing them at the dependence sink and source to
	// maximize overlap). Otherwise the executor conservatively awaits
	// before and posts after the whole body.
	ManualSync bool

	// If fields (KindIf).
	Cond CondFn
	Then []*Node
	Else []*Node

	// Stmt fields (KindStmt).
	Run StmtFn
}

// IsLeaf reports whether the node is an innermost parallel loop (a
// schedulable leaf): a parallel loop with an Iter function.
func (n *Node) IsLeaf() bool { return n.Kind.IsParallel() && n.Iter != nil }

// Nest is a complete general parallel nested loop: a sequence of top-level
// constructs plus node bookkeeping.
type Nest struct {
	Root   []*Node
	nextID int
	// Standardized is set by Standardize on its output nest.
	Standardized bool
}

// NewID returns a fresh node ID (used by transformation passes that create
// nodes).
func (n *Nest) NewID() int {
	n.nextID++
	return n.nextID
}

// Walk visits every node of the nest in program order (pre-order; IF
// visits Then before Else). The visit function may not modify structure.
func (n *Nest) Walk(visit func(node *Node, depth int)) {
	var rec func(nodes []*Node, depth int)
	rec = func(nodes []*Node, depth int) {
		for _, nd := range nodes {
			visit(nd, depth)
			switch nd.Kind {
			case KindIf:
				rec(nd.Then, depth)
				rec(nd.Else, depth)
			default:
				rec(nd.Body, depth+1)
			}
		}
	}
	rec(n.Root, 0)
}

// Leaves returns the innermost parallel loops in program order (the
// paper's numbering 1..m, top to bottom). Only meaningful on a
// standardized nest, where every execution path ends in a leaf.
func (n *Nest) Leaves() []*Node {
	var out []*Node
	n.Walk(func(nd *Node, _ int) {
		if nd.IsLeaf() {
			out = append(out, nd)
		}
	})
	return out
}

// CountNodes returns the total number of nodes.
func (n *Nest) CountNodes() int {
	c := 0
	n.Walk(func(*Node, int) { c++ })
	return c
}
