package loopir

import (
	"errors"
	"fmt"
)

// B is the nest builder. Construct nests with Build; inside the callback,
// each method appends one construct to the current sequence.
type B struct {
	nest  *Nest
	nodes *[]*Node
	err   error
}

// Build constructs a Nest. The callback appends top-level constructs to b.
// Build validates the result and reports construction errors instead of
// panicking, so malformed programs are diagnosable in tests.
func Build(f func(b *B)) (*Nest, error) {
	nest := &Nest{}
	b := &B{nest: nest, nodes: &nest.Root}
	f(b)
	if b.err != nil {
		return nil, b.err
	}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	return nest, nil
}

// MustBuild is Build that panics on error, for tests and examples with
// statically correct programs.
func MustBuild(f func(b *B)) *Nest {
	n, err := Build(f)
	if err != nil {
		panic(err)
	}
	return n
}

func (b *B) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *B) add(n *Node) *Node {
	n.ID = b.nest.NewID()
	*b.nodes = append(*b.nodes, n)
	return n
}

func (b *B) sub(body *[]*Node, f func(b *B)) {
	inner := &B{nest: b.nest, nodes: body}
	if f != nil {
		f(inner)
	}
	if inner.err != nil && b.err == nil {
		b.err = inner.err
	}
}

// Doall appends a structural Doall loop whose body is built by f.
func (b *B) Doall(label string, bound Bound, f func(b *B)) {
	n := b.add(&Node{Kind: KindDoall, Label: label, Bound: bound})
	b.sub(&n.Body, f)
}

// DoallLeaf appends an innermost Doall loop with iteration body iter.
func (b *B) DoallLeaf(label string, bound Bound, iter BodyFn) {
	if iter == nil {
		b.fail("loopir: DoallLeaf %q: nil iteration body", label)
		return
	}
	b.add(&Node{Kind: KindDoall, Label: label, Bound: bound, Iter: iter})
}

// DoacrossLeaf appends an innermost Doacross loop with cross-iteration
// dependence distance dist (>= 1) and iteration body iter. Iteration j
// may not pass its dependence sink until iteration j-dist has posted.
func (b *B) DoacrossLeaf(label string, bound Bound, dist int64, iter BodyFn) {
	if iter == nil {
		b.fail("loopir: DoacrossLeaf %q: nil iteration body", label)
		return
	}
	b.add(&Node{Kind: KindDoacross, Label: label, Bound: bound, Dist: dist, Iter: iter})
}

// DoacrossLeafManual is DoacrossLeaf for bodies that drive the
// cross-iteration synchronization themselves: the body calls Env.AwaitDep
// at its dependence sink and Env.PostDep right after its dependence
// source, allowing the pre-sink and post-source portions of adjacent
// iterations to overlap (the partial overlap of doacross execution [15]).
func (b *B) DoacrossLeafManual(label string, bound Bound, dist int64, iter BodyFn) {
	if iter == nil {
		b.fail("loopir: DoacrossLeafManual %q: nil iteration body", label)
		return
	}
	b.add(&Node{Kind: KindDoacross, Label: label, Bound: bound, Dist: dist, Iter: iter, ManualSync: true})
}

// Serial appends a serial loop whose body is built by f.
func (b *B) Serial(label string, bound Bound, f func(b *B)) {
	n := b.add(&Node{Kind: KindSerial, Label: label, Bound: bound})
	b.sub(&n.Body, f)
}

// If appends an IF-THEN-ELSE construct. elseF may be nil for an IF with an
// empty FALSE branch.
func (b *B) If(label string, cond CondFn, thenF, elseF func(b *B)) {
	if cond == nil {
		b.fail("loopir: If %q: nil condition", label)
		return
	}
	n := b.add(&Node{Kind: KindIf, Label: label, Cond: cond})
	b.sub(&n.Then, thenF)
	if elseF != nil {
		b.sub(&n.Else, elseF)
	}
}

// Sections appends a parallel-sections construct: the given section
// bodies may execute concurrently, and the construct completes when all
// sections have (PCF Fortran's vertical parallelism, which Section II-B of
// the paper notes the scheme "can be easily extended to accommodate").
//
// The extension is a lowering: the sections become a Doall loop over the
// section index whose body dispatches through an IF ladder, so the
// unmodified two-level machinery provides the fan-out (ENTER over a
// parallel level) and the completion barrier (BAR_COUNT).
func (b *B) Sections(label string, sections ...func(b *B)) {
	if len(sections) == 0 {
		b.fail("loopir: Sections %q: no sections", label)
		return
	}
	b.Doall(label, Const(int64(len(sections))), func(b *B) {
		var ladder func(b *B, k int)
		ladder = func(b *B, k int) {
			if k == len(sections)-1 {
				n := len(*b.nodes)
				b.sub(b.nodes, sections[k])
				if len(*b.nodes) == n && b.err == nil {
					b.fail("loopir: Sections %q: section %d is empty", label, k+1)
				}
				return
			}
			want := int64(k + 1)
			b.If(fmt.Sprintf("%s.is%d", label, k+1),
				func(iv IVec) bool { return iv[len(iv)-1] == want },
				func(b *B) {
					n := len(*b.nodes)
					b.sub(b.nodes, sections[k])
					if len(*b.nodes) == n && b.err == nil {
						b.fail("loopir: Sections %q: section %d is empty", label, k+1)
					}
				},
				func(b *B) { ladder(b, k+1) })
		}
		ladder(b, 0)
	})
}

// Stmt appends a scalar statement.
func (b *B) Stmt(label string, run StmtFn) {
	if run == nil {
		b.fail("loopir: Stmt %q: nil body", label)
		return
	}
	b.add(&Node{Kind: KindStmt, Label: label, Run: run})
}

// Validate checks structural invariants of the nest:
//   - every loop has a valid bound,
//   - Doacross loops are leaves with dist >= 1,
//   - IF constructs have at least one nonempty branch,
//   - labels are unique and nonempty,
//   - leaf loops have no Body, structural loops have no Iter.
func (n *Nest) Validate() error {
	if len(n.Root) == 0 {
		return errors.New("loopir: empty nest")
	}
	labels := map[string]bool{}
	var errs []error
	n.Walk(func(nd *Node, _ int) {
		where := fmt.Sprintf("%v %q", nd.Kind, nd.Label)
		if nd.Label == "" {
			errs = append(errs, fmt.Errorf("loopir: %v with empty label (id %d)", nd.Kind, nd.ID))
		} else if labels[nd.Label] {
			errs = append(errs, fmt.Errorf("loopir: duplicate label %q", nd.Label))
		}
		labels[nd.Label] = true
		switch nd.Kind {
		case KindDoall, KindSerial:
			if !nd.Bound.Valid() {
				errs = append(errs, fmt.Errorf("loopir: %s: invalid bound", where))
			}
			if nd.Iter != nil && len(nd.Body) > 0 {
				errs = append(errs, fmt.Errorf("loopir: %s: both Iter and Body set", where))
			}
			if nd.Kind == KindSerial && nd.Iter != nil {
				errs = append(errs, fmt.Errorf("loopir: %s: serial loop cannot be a leaf", where))
			}
			if nd.Iter == nil && len(nd.Body) == 0 {
				errs = append(errs, fmt.Errorf("loopir: %s: empty loop body", where))
			}
		case KindDoacross:
			if !nd.Bound.Valid() {
				errs = append(errs, fmt.Errorf("loopir: %s: invalid bound", where))
			}
			if nd.Dist < 1 {
				errs = append(errs, fmt.Errorf("loopir: %s: doacross distance %d < 1", where, nd.Dist))
			}
			if nd.Iter == nil || len(nd.Body) > 0 {
				errs = append(errs, fmt.Errorf("loopir: %s: doacross must be an innermost leaf", where))
			}
		case KindIf:
			if len(nd.Then) == 0 && len(nd.Else) == 0 {
				errs = append(errs, fmt.Errorf("loopir: %s: both branches empty", where))
			}
		case KindStmt:
			if nd.Run == nil {
				errs = append(errs, fmt.Errorf("loopir: %s: nil statement body", where))
			}
		default:
			errs = append(errs, fmt.Errorf("loopir: %s: unknown kind", where))
		}
	})
	return errors.Join(errs...)
}
