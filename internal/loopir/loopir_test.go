package loopir

import (
	"fmt"
	"strings"
	"testing"
)

// recEnv is a trivial Env recording executed labels for assertions.
type recEnv struct {
	log  []string
	work int64
}

func (e *recEnv) Work(c int64)  { e.work += c }
func (e *recEnv) Proc() int     { return 0 }
func (e *recEnv) NumProcs() int { return 1 }
func (e *recEnv) AwaitDep()     {}
func (e *recEnv) PostDep()      {}

func (e *recEnv) note(format string, args ...any) {
	e.log = append(e.log, fmt.Sprintf(format, args...))
}

func stmt(e Env, label string, iv IVec) {
	e.(*recEnv).note("%s%v", label, iv)
}

func TestBuildSimple(t *testing.T) {
	nest, err := Build(func(b *B) {
		b.DoallLeaf("A", Const(3), func(e Env, iv IVec, j int64) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nest.CountNodes(); got != 1 {
		t.Errorf("CountNodes = %d, want 1", got)
	}
	leaves := nest.Leaves()
	if len(leaves) != 1 || leaves[0].Label != "A" {
		t.Errorf("Leaves = %v", leaves)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *B)
		want string
	}{
		{"empty nest", func(b *B) {}, "empty nest"},
		{"nil stmt", func(b *B) { b.Stmt("s", nil) }, "nil"},
		{"nil cond", func(b *B) { b.If("c", nil, nil, nil) }, "nil"},
		{"nil iter", func(b *B) { b.DoallLeaf("A", Const(1), nil) }, "nil"},
		{"empty loop", func(b *B) { b.Doall("I", Const(2), nil) }, "empty loop body"},
		{"empty if", func(b *B) {
			b.If("c", func(IVec) bool { return true }, nil, nil)
		}, "both branches empty"},
		{"dup labels", func(b *B) {
			it := func(Env, IVec, int64) {}
			b.DoallLeaf("A", Const(1), it)
			b.DoallLeaf("A", Const(1), it)
		}, "duplicate label"},
		{"bad doacross dist", func(b *B) {
			b.DoacrossLeaf("W", Const(4), 0, func(Env, IVec, int64) {})
		}, "distance 0 < 1"},
		{"invalid bound", func(b *B) {
			b.DoallLeaf("A", Bound{}, func(Env, IVec, int64) {})
		}, "invalid bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Build(c.f)
			if err == nil {
				t.Fatalf("no error, want %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestBoundEval(t *testing.T) {
	if got := Const(7).Eval(nil); got != 7 {
		t.Errorf("Const(7).Eval = %d", got)
	}
	if got := Const(-3).Eval(nil); got != 0 {
		t.Errorf("negative bound should clamp to 0, got %d", got)
	}
	b := BoundFn(func(iv IVec) int64 { return iv[0] * 2 })
	if got := b.Eval(IVec{5}); got != 10 {
		t.Errorf("BoundFn.Eval = %d, want 10", got)
	}
	if _, ok := b.IsStatic(); ok {
		t.Error("BoundFn reported static")
	}
	if v, ok := Const(4).IsStatic(); !ok || v != 4 {
		t.Error("Const not reported static")
	}
	defer func() {
		if recover() == nil {
			t.Error("uninitialized Bound.Eval did not panic")
		}
	}()
	(Bound{}).Eval(nil)
}

func TestIVec(t *testing.T) {
	iv := IVec{1, 2, 3}
	c := iv.Clone()
	c[0] = 9
	if iv[0] != 1 {
		t.Error("Clone aliases original")
	}
	if iv.String() != "(1,2,3)" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestIsPure(t *testing.T) {
	st := &Node{Kind: KindStmt, Label: "s", Run: func(Env, IVec) {}}
	ser := &Node{Kind: KindSerial, Label: "k", Bound: Const(2), Body: []*Node{st}}
	ifn := &Node{Kind: KindIf, Label: "c", Cond: func(IVec) bool { return true },
		Then: []*Node{st}, Else: []*Node{ser}}
	par := &Node{Kind: KindDoall, Label: "p", Bound: Const(2),
		Iter: func(Env, IVec, int64) {}}
	if !IsPure(st) || !IsPure(ser) || !IsPure(ifn) {
		t.Error("stmt/serial/if-over-pure should be pure")
	}
	if IsPure(par) {
		t.Error("parallel loop reported pure")
	}
	serPar := &Node{Kind: KindSerial, Label: "k2", Bound: Const(2), Body: []*Node{par}}
	if IsPure(serPar) {
		t.Error("serial over parallel reported pure")
	}
}

func TestRunPureSerialExtendsIVec(t *testing.T) {
	e := &recEnv{}
	nodes := []*Node{
		{Kind: KindSerial, Label: "k", Bound: Const(2), Body: []*Node{
			{Kind: KindStmt, Label: "s", Run: func(e Env, iv IVec) { stmt(e, "s", iv) }},
		}},
	}
	RunPure(e, nodes, IVec{7})
	want := []string{"s(7,1)", "s(7,2)"}
	if fmt.Sprint(e.log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", e.log, want)
	}
}

func TestRunPureIf(t *testing.T) {
	e := &recEnv{}
	nodes := []*Node{
		{Kind: KindIf, Label: "c", Cond: func(iv IVec) bool { return iv[0] == 1 },
			Then: []*Node{{Kind: KindStmt, Label: "t", Run: func(e Env, iv IVec) { stmt(e, "t", iv) }}},
			Else: []*Node{{Kind: KindStmt, Label: "f", Run: func(e Env, iv IVec) { stmt(e, "f", iv) }}},
		},
	}
	RunPure(e, nodes, IVec{1})
	RunPure(e, nodes, IVec{2})
	want := []string{"t(1)", "f(2)"}
	if fmt.Sprint(e.log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", e.log, want)
	}
}

// fig2Nest reproduces the shape of Fig. 2(a): serial J1 containing a
// parallel loop J with a nested serial loop J4, plus serial loops J2, J3
// (scalar code) at the same level as J.
func fig2Nest(t *testing.T) *Nest {
	t.Helper()
	nest, err := Build(func(b *B) {
		b.Serial("J1", Const(2), func(b *B) {
			b.Doall("J", Const(3), func(b *B) {
				b.Serial("J4", Const(2), func(b *B) {
					b.Stmt("body", func(e Env, iv IVec) { stmt(e, "body", iv) })
				})
			})
			b.Serial("J2", Const(2), func(b *B) {
				b.Stmt("s2", func(e Env, iv IVec) { stmt(e, "s2", iv) })
			})
			b.Serial("J3", Const(2), func(b *B) {
				b.Stmt("s3", func(e Env, iv IVec) { stmt(e, "s3", iv) })
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

func TestStandardizeFig2(t *testing.T) {
	nest := fig2Nest(t)
	std, err := nest.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	// Expected shape (Fig. 2(b)): serial J1 containing exactly two
	// innermost parallel loops: J (with J4 folded into its body) and one
	// scalar leaf wrapping J2+J3.
	if len(std.Root) != 1 || std.Root[0].Label != "J1" {
		t.Fatalf("root = %v", std)
	}
	body := std.Root[0].Body
	if len(body) != 2 {
		t.Fatalf("J1 body has %d constructs, want 2:\n%s", len(body), std)
	}
	if !body[0].IsLeaf() || body[0].Label != "J" {
		t.Errorf("first construct should be leaf J, got %v %q", body[0].Kind, body[0].Label)
	}
	if !body[1].IsLeaf() || body[1].Label != "scalar(J2,J3)" {
		t.Errorf("second construct should be scalar leaf, got %q", body[1].Label)
	}
	if b, ok := body[1].Bound.IsStatic(); !ok || b != 1 {
		t.Errorf("scalar leaf bound = %v, want 1", body[1].Bound)
	}

	// Executing leaf J's iteration 2 with J1=1 must run the folded serial
	// loop J4 twice with extended index vectors.
	e := &recEnv{}
	body[0].Iter(e, IVec{1}, 2)
	want := []string{"body(1,2,1)", "body(1,2,2)"}
	if fmt.Sprint(e.log) != fmt.Sprint(want) {
		t.Errorf("folded body log = %v, want %v", e.log, want)
	}

	// The scalar leaf runs J2 then J3 with the enclosing index only.
	e = &recEnv{}
	body[1].Iter(e, IVec{2}, 1)
	want = []string{"s2(2,1)", "s2(2,2)", "s3(2,1)", "s3(2,2)"}
	if fmt.Sprint(e.log) != fmt.Sprint(want) {
		t.Errorf("scalar leaf log = %v, want %v", e.log, want)
	}
}

func TestStandardizeIdempotent(t *testing.T) {
	std, err := fig2Nest(t).Standardize()
	if err != nil {
		t.Fatal(err)
	}
	std2, err := std.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	if std.String() != std2.String() {
		t.Errorf("standardize not idempotent:\n%s\nvs\n%s", std, std2)
	}
}

func TestStandardizeNormalizesEmptyThen(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.If("c", func(iv IVec) bool { return iv == nil }, nil, func(b *B) {
			b.DoallLeaf("G", Const(2), func(Env, IVec, int64) {})
		})
	})
	std, err := nest.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	ifn := std.Root[0]
	if ifn.Kind != KindIf {
		t.Fatalf("root kind = %v", ifn.Kind)
	}
	if len(ifn.Then) == 0 || len(ifn.Else) != 0 {
		t.Errorf("empty-THEN not normalized: then=%d else=%d", len(ifn.Then), len(ifn.Else))
	}
	if ifn.Cond(IVec{1}) != true { // original cond(iv)=false for non-nil, negated = true
		t.Error("condition not negated")
	}
	if !strings.HasSuffix(ifn.Label, "!") {
		t.Errorf("normalized IF label %q lacks '!' marker", ifn.Label)
	}
}

func TestStandardizePreservesInput(t *testing.T) {
	nest := fig2Nest(t)
	before := nest.String()
	if _, err := nest.Standardize(); err != nil {
		t.Fatal(err)
	}
	if nest.String() != before {
		t.Error("Standardize mutated its input")
	}
}

func TestStandardizeWholePureProgram(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Stmt("s1", func(e Env, iv IVec) { stmt(e, "s1", iv) })
		b.Serial("k", Const(2), func(b *B) {
			b.Stmt("s2", func(e Env, iv IVec) { stmt(e, "s2", iv) })
		})
	})
	std, err := nest.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	if len(std.Root) != 1 || !std.Root[0].IsLeaf() {
		t.Fatalf("pure program should standardize to one scalar leaf:\n%s", std)
	}
	e := &recEnv{}
	std.Root[0].Iter(e, nil, 1)
	want := []string{"s1()", "s2(1)", "s2(2)"}
	if fmt.Sprint(e.log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", e.log, want)
	}
}

func TestCoalesceFig3(t *testing.T) {
	// Fig. 3(a): doall K1 = 1..P1 containing doall K2 = 1..P2, coalesced
	// into a single loop of P1*P2 iterations (Fig. 3(b)).
	const P1, P2 = 4, 5
	var got []string
	nest := MustBuild(func(b *B) {
		b.Doall("K1", Const(P1), func(b *B) {
			b.DoallLeaf("K2", Const(P2), func(e Env, iv IVec, j int64) {
				got = append(got, fmt.Sprintf("%d.%d", iv[len(iv)-1], j))
			})
		})
	})
	std, err := nest.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	co, err := std.Coalesce()
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Root) != 1 || !co.Root[0].IsLeaf() {
		t.Fatalf("not coalesced to a single leaf:\n%s", co)
	}
	leaf := co.Root[0]
	if leaf.Label != "K1*K2" {
		t.Errorf("label = %q, want K1*K2", leaf.Label)
	}
	if b, ok := leaf.Bound.IsStatic(); !ok || b != P1*P2 {
		t.Errorf("bound = %v, want %d", leaf.Bound, P1*P2)
	}
	e := &recEnv{}
	for j := int64(1); j <= P1*P2; j++ {
		leaf.Iter(e, nil, j)
	}
	if len(got) != P1*P2 {
		t.Fatalf("executed %d iterations, want %d", len(got), P1*P2)
	}
	// Row-major order: 1.1, 1.2, ..., 1.P2, 2.1, ...
	if got[0] != "1.1" || got[P2-1] != fmt.Sprintf("1.%d", P2) || got[P2] != "2.1" || got[P1*P2-1] != fmt.Sprintf("%d.%d", P1, P2) {
		t.Errorf("coalesced order wrong: %v", got)
	}
}

func TestCoalesceMultiLevel(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Doall("A", Const(2), func(b *B) {
			b.Doall("B", Const(3), func(b *B) {
				b.DoallLeaf("C", Const(4), func(e Env, iv IVec, j int64) {})
			})
		})
	})
	std, _ := nest.Standardize()
	co, err := std.Coalesce()
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Root) != 1 || !co.Root[0].IsLeaf() {
		t.Fatalf("3-deep perfect nest should fully coalesce:\n%s", co)
	}
	if b, _ := co.Root[0].Bound.IsStatic(); b != 24 {
		t.Errorf("bound = %d, want 24", b)
	}
}

func TestCoalesceDynamicOuterBound(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Serial("S", Const(3), func(b *B) {
			b.Doall("K1", BoundFn(func(iv IVec) int64 { return iv[0] }), func(b *B) {
				b.DoallLeaf("K2", Const(4), func(e Env, iv IVec, j int64) {})
			})
		})
	})
	std, _ := nest.Standardize()
	co, err := std.Coalesce()
	if err != nil {
		t.Fatal(err)
	}
	leaf := co.Root[0].Body[0]
	if !leaf.IsLeaf() {
		t.Fatalf("inner nest not coalesced:\n%s", co)
	}
	if got := leaf.Bound.Eval(IVec{2}); got != 8 {
		t.Errorf("coalesced bound at S=2: %d, want 8", got)
	}
}

func TestCoalesceSkipsDynamicInnerBound(t *testing.T) {
	// Inner bound depends on the outer index: must NOT coalesce.
	nest := MustBuild(func(b *B) {
		b.Doall("K1", Const(4), func(b *B) {
			b.DoallLeaf("K2", BoundFn(func(iv IVec) int64 { return iv[len(iv)-1] }),
				func(e Env, iv IVec, j int64) {})
		})
	})
	std, _ := nest.Standardize()
	co, err := std.Coalesce()
	if err != nil {
		t.Fatal(err)
	}
	if co.Root[0].IsLeaf() {
		t.Error("coalesced a triangular nest (inner bound depends on outer index)")
	}
}

func TestCoalesceSkipsDoacross(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Doall("K1", Const(4), func(b *B) {
			b.DoacrossLeaf("W", Const(5), 1, func(e Env, iv IVec, j int64) {})
		})
	})
	std, _ := nest.Standardize()
	co, err := std.Coalesce()
	if err != nil {
		t.Fatal(err)
	}
	if co.Root[0].IsLeaf() {
		t.Error("coalesced over a Doacross leaf")
	}
}

func TestCoalesceRequiresStandardized(t *testing.T) {
	nest := fig2Nest(t)
	if _, err := nest.Coalesce(); err == nil {
		t.Error("Coalesce on raw nest should fail")
	}
}

func TestStringRendering(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Doall("I", Const(2), func(b *B) {
			b.DoallLeaf("A", Const(3), func(Env, IVec, int64) {})
			b.Serial("K", Const(2), func(b *B) {
				b.DoacrossLeaf("W", Const(5), 2, func(Env, IVec, int64) {})
			})
			b.If("c", func(IVec) bool { return true }, func(b *B) {
				b.Stmt("s", func(Env, IVec) {})
			}, nil)
		})
	})
	s := nest.String()
	for _, want := range []string{"[| I", "[| A*", "[: K", "doacross d=2", "if c then", "s (stmt)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestWalkDepths(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Doall("I", Const(2), func(b *B) {
			b.Serial("K", Const(2), func(b *B) {
				b.DoallLeaf("C", Const(2), func(Env, IVec, int64) {})
			})
		})
	})
	depths := map[string]int{}
	nest.Walk(func(nd *Node, d int) { depths[nd.Label] = d })
	if depths["I"] != 0 || depths["K"] != 1 || depths["C"] != 2 {
		t.Errorf("depths = %v", depths)
	}
}

func TestLeafOrderIsProgramOrder(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.DoallLeaf("A", Const(1), func(Env, IVec, int64) {})
		b.If("c", func(IVec) bool { return true }, func(b *B) {
			b.DoallLeaf("F", Const(1), func(Env, IVec, int64) {})
		}, func(b *B) {
			b.DoallLeaf("G", Const(1), func(Env, IVec, int64) {})
		})
		b.DoallLeaf("H", Const(1), func(Env, IVec, int64) {})
	})
	var labels []string
	for _, l := range nest.Leaves() {
		labels = append(labels, l.Label)
	}
	if fmt.Sprint(labels) != "[A F G H]" {
		t.Errorf("leaf order = %v, want [A F G H]", labels)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid nest")
		}
	}()
	MustBuild(func(b *B) {})
}
