package obs

import (
	"strings"
	"sync"
	"testing"
)

const (
	cAlpha ID = iota
	cBeta
	numTest
)

var testDescs = []Desc{
	{Name: "alpha", Help: "first", Unit: "count"},
	{Name: "beta", Help: "second", Unit: "vtime"},
}

func TestSpineShardedMerge(t *testing.T) {
	s := NewSpine(4, testDescs)
	if s.NumShards() != 4 || s.NumCounters() != int(numTest) {
		t.Fatalf("shape: %d shards, %d counters", s.NumShards(), s.NumCounters())
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sh := s.Shard(p)
			for i := 0; i < 1000; i++ {
				sh.Inc(cAlpha)
				sh.Add(cBeta, 2)
			}
		}(p)
	}
	wg.Wait()
	if got := s.Total(cAlpha); got != 4000 {
		t.Errorf("alpha total = %d, want 4000", got)
	}
	tot := s.Totals()
	if tot[cAlpha] != 4000 || tot[cBeta] != 8000 {
		t.Errorf("totals = %v, want [4000 8000]", tot)
	}
	if got := s.Shard(0).Get(cAlpha); got != 1000 {
		t.Errorf("shard 0 alpha = %d, want 1000", got)
	}
	// The subset read path agrees with Totals, including repeated IDs
	// and stale values in out.
	sum := []int64{-1, -1, -1}
	s.Sum([]ID{cBeta, cAlpha, cBeta}, sum)
	if sum[0] != 8000 || sum[1] != 4000 || sum[2] != 8000 {
		t.Errorf("Sum = %v, want [8000 4000 8000]", sum)
	}
}

func TestSpineConcurrentReadDuringWrite(t *testing.T) {
	// Merged reads must be race-safe against live writers (the probe /
	// live-stats use case).
	s := NewSpine(2, testDescs)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sh := s.Shard(1)
		for i := 0; i < 5000; i++ {
			sh.Inc(cAlpha)
		}
	}()
	for i := 0; i < 100; i++ {
		_ = s.Total(cAlpha)
		_ = s.Totals()
	}
	<-done
	if got := s.Total(cAlpha); got != 5000 {
		t.Errorf("alpha = %d, want 5000", got)
	}
}

func TestSpineClampsShards(t *testing.T) {
	if got := NewSpine(0, testDescs).NumShards(); got != 1 {
		t.Errorf("NumShards = %d, want 1", got)
	}
}

func TestSpineRejectsDuplicateNames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate counter name")
		}
	}()
	NewSpine(1, []Desc{{Name: "x"}, {Name: "x"}})
}

func TestViewOffsets(t *testing.T) {
	s := NewSpine(1, testDescs)
	v := ViewAt(s.Shard(0), cBeta)
	v.Inc(0)
	v.Add(0, 9)
	if got := s.Total(cBeta); got != 10 {
		t.Errorf("beta = %d, want 10", got)
	}
	if got := s.Total(cAlpha); got != 0 {
		t.Errorf("alpha = %d, want 0", got)
	}
}

func TestRegistryProm(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "total runs")
	c.Add(3)
	if again := r.Counter("runs_total", "total runs"); again != c {
		t.Error("Counter must return the existing counter for a repeated name")
	}
	r.Gauge("queue_depth", "queued runs", func() float64 { return 2 })
	r.Gauge("ratio", "", func() float64 { return 0.5 })
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP runs_total total runs\n# TYPE runs_total counter\nruns_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth 2\n",
		"# TYPE ratio gauge\nratio 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q; got:\n%s", want, out)
		}
	}
	// Sorted by name: queue_depth < ratio < runs_total.
	if !(strings.Index(out, "queue_depth") < strings.Index(out, "ratio") &&
		strings.Index(out, "ratio") < strings.Index(out, "runs_total")) {
		t.Errorf("prom output not sorted:\n%s", out)
	}
}

func TestRegistryNameCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("x", "", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("want panic registering counter over gauge name")
		}
	}()
	r.Counter("x", "")
}
