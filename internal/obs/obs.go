// Package obs is the sharded statistics spine of the executor and its
// services.
//
// Two primitives cover the two reporting regimes:
//
//   - Spine: a fixed set of counters declared up front, stored as one
//     shard per processor. Writers touch only their own shard (no
//     cross-processor cache-line traffic on the hot scheduling path);
//     readers merge the shards on demand, so live probes can sample a
//     running execution at any time without stopping it.
//   - Registry: process-lifetime counters and gauges for services
//     (run managers, HTTP front ends), rendered in the Prometheus text
//     exposition format.
//
// Recording through the spine charges no machine time — it is host-side
// bookkeeping, part of the zero-cost observer contract of core.Tracer.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Desc declares one spine counter.
type Desc struct {
	// Name is the counter's identifier, in snake_case (it doubles as the
	// Prometheus metric stem).
	Name string
	// Help is a one-line description.
	Help string
	// Unit is a display unit ("count", "vtime", "ns", "bytes").
	Unit string
}

// ID indexes a counter within a Spine; IDs are assigned in declaration
// order, so packages can declare them as iota constants parallel to
// their Desc slice.
type ID int

// Spine is a sharded counter block: len(descs) counters × nshards
// shards. The zero value is not usable; construct with NewSpine.
type Spine struct {
	descs  []Desc
	shards []Shard
}

// Shard is one writer's private counter block. A shard must only be
// written by its owning processor/goroutine; reads may come from
// anywhere (values are atomics, merged by the Spine on read). All
// shards share one backing array with the per-shard stride rounded up
// to a cache line, so a spine costs a constant number of allocations
// while shards of different processors still do not share lines.
type Shard struct {
	vals []atomic.Int64
}

// shardStride rounds a counter count up so consecutive shards start on
// separate 64-byte cache lines of the shared backing array.
func shardStride(ncounters int) int {
	const per = 8 // 64-byte line / 8-byte atomic.Int64
	return (ncounters + per - 1) / per * per
}

// NewSpine returns a spine with the given shard count (one per
// processor, at least 1) over the declared counters.
func NewSpine(nshards int, descs []Desc) *Spine {
	if nshards < 1 {
		nshards = 1
	}
	for i, d := range descs {
		if d.Name == "" {
			panic("obs: counter with empty name")
		}
		for _, prev := range descs[:i] {
			if prev.Name == d.Name {
				panic(fmt.Sprintf("obs: duplicate counter %q", d.Name))
			}
		}
	}
	stride := shardStride(len(descs))
	vals := make([]atomic.Int64, nshards*stride)
	s := &Spine{descs: descs, shards: make([]Shard, nshards)}
	for i := range s.shards {
		s.shards[i] = Shard{vals: vals[i*stride : i*stride+len(descs) : i*stride+stride]}
	}
	return s
}

// NumShards returns the shard count.
func (s *Spine) NumShards() int { return len(s.shards) }

// NumCounters returns the declared counter count.
func (s *Spine) NumCounters() int { return len(s.descs) }

// Descs returns the counter declarations in ID order.
func (s *Spine) Descs() []Desc { return s.descs }

// Shard returns shard i for its owning writer.
func (s *Spine) Shard(i int) *Shard { return &s.shards[i] }

// Add adds v to the shard's counter id.
func (sh *Shard) Add(id ID, v int64) { sh.vals[id].Add(v) }

// Inc increments the shard's counter id.
func (sh *Shard) Inc(id ID) { sh.vals[id].Add(1) }

// Get returns the shard's own value of counter id.
func (sh *Shard) Get(id ID) int64 { return sh.vals[id].Load() }

// Total merges counter id across all shards.
func (s *Spine) Total(id ID) int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.vals[id].Load()
	}
	return n
}

// Totals merges every counter across all shards, indexed by ID.
func (s *Spine) Totals() []int64 {
	out := make([]int64, len(s.descs))
	for _, sh := range s.shards {
		for i := range out {
			out[i] += sh.vals[i].Load()
		}
	}
	return out
}

// Sum merges only the requested counters across all shards, writing
// totals into out (out[i] accumulates ids[i]; len(out) must be at least
// len(ids)). It is the cheap read path for samplers that poll a small
// counter subset repeatedly — the adaptive scheduler's fitter samples a
// handful of counters at every instance activation — doing one shard
// traversal with zero allocation instead of merging the whole spine.
func (s *Spine) Sum(ids []ID, out []int64) {
	for i := range ids {
		out[i] = 0
	}
	for _, sh := range s.shards {
		for i, id := range ids {
			out[i] += sh.vals[id].Load()
		}
	}
}

// View is a window into a shard starting at a base ID. Subsystems that
// declare their own counter block relative to zero (e.g. the task
// pool's SEARCH counters) record through a View placed at the base the
// spine owner assigned them, so one spine serves several packages
// without shared ID constants.
type View struct {
	sh   *Shard
	base ID
}

// ViewAt returns a view of sh whose local counter 0 is spine counter
// base.
func ViewAt(sh *Shard, base ID) View { return View{sh: sh, base: base} }

// Add adds v to local counter i.
func (v View) Add(i int, n int64) { v.sh.vals[int(v.base)+i].Add(n) }

// Inc increments local counter i.
func (v View) Inc(i int) { v.sh.vals[int(v.base)+i].Add(1) }

// Registry holds process-lifetime counters and gauges for services.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	vecs     []*CounterVec
	gauges   []gauge
	byName   map[string]bool
}

// Counter is a monotone registry counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add adds v (v >= 0 for monotone semantics; not enforced).
func (c *Counter) Add(v int64) { c.v.Add(v) }

// Inc increments the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

type gauge struct {
	name, help string
	fn         func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]bool{}} }

// Counter registers (or returns the existing) counter with the given
// name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	if r.byName[name] {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge", name))
	}
	r.byName[name] = true
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// CounterVec is a family of monotone counters sharing one metric name,
// distinguished by the value of a single label (e.g. tenant). Children
// are created on first use and live for the registry's lifetime, so the
// label must be low-cardinality (tenant keys, not run IDs).
type CounterVec struct {
	name, help, label string

	mu   sync.Mutex
	kids map[string]*Counter
}

// CounterVec registers (or returns the existing) labeled counter family
// with the given name. A family and a plain metric cannot share a name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.vecs {
		if v.name == name {
			return v
		}
	}
	if r.byName[name] {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	r.byName[name] = true
	v := &CounterVec{name: name, help: help, label: label, kids: map[string]*Counter{}}
	r.vecs = append(r.vecs, v)
	return v
}

// With returns the family's counter for the given label value, creating
// it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.kids[value]
	if c == nil {
		c = &Counter{name: v.name}
		v.kids[value] = c
	}
	return c
}

// Values snapshots the family as label value → counter value.
func (v *CounterVec) Values() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.kids))
	for k, c := range v.kids {
		out[k] = c.Value()
	}
	return out
}

// promBlock renders the family: HELP/TYPE once for the bare name, one
// sample line per label value, sorted for stable output.
func (v *CounterVec) promBlock() string {
	var sb strings.Builder
	if v.help != "" {
		fmt.Fprintf(&sb, "# HELP %s %s\n", v.name, v.help)
	}
	fmt.Fprintf(&sb, "# TYPE %s counter\n", v.name)
	v.mu.Lock()
	vals := make([]string, 0, len(v.kids))
	for k := range v.kids {
		vals = append(vals, k)
	}
	sort.Strings(vals)
	for _, k := range vals {
		// %q escapes backslash, double quote and newline exactly as the
		// Prometheus text exposition format requires for label values.
		fmt.Fprintf(&sb, "%s{%s=%q} %d\n", v.name, v.label, k, v.kids[k].Value())
	}
	v.mu.Unlock()
	return sb.String()
}

// Gauge registers a callback gauge: fn is evaluated at render time.
// Registering a name twice panics.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	r.byName[name] = true
	r.gauges = append(r.gauges, gauge{name: name, help: help, fn: fn})
}

// WriteProm renders the registry in the Prometheus text exposition
// format, metrics sorted by name.
func (r *Registry) WriteProm(sb *strings.Builder) {
	type entry struct {
		name, block string
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.counters)+len(r.vecs)+len(r.gauges))
	for _, c := range r.counters {
		entries = append(entries, entry{c.name, promLine(c.name, c.help, "counter", float64(c.v.Load()))})
	}
	for _, v := range r.vecs {
		entries = append(entries, entry{v.name, v.promBlock()})
	}
	for _, g := range r.gauges {
		entries = append(entries, entry{g.name, promLine(g.name, g.help, "gauge", g.fn())})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		sb.WriteString(e.block)
	}
}

func promLine(name, help, typ string, v float64) string {
	var sb strings.Builder
	if help != "" {
		fmt.Fprintf(&sb, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(&sb, "# TYPE %s %s\n", name, typ)
	if v == float64(int64(v)) {
		fmt.Fprintf(&sb, "%s %d\n", name, int64(v))
	} else {
		fmt.Fprintf(&sb, "%s %g\n", name, v)
	}
	return sb.String()
}
