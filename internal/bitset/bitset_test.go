package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(10)
	if s.Any() {
		t.Error("new set reports Any() = true")
	}
	if got := s.FirstSet(); got != 0 {
		t.Errorf("FirstSet on empty set = %d, want 0", got)
	}
	if got := s.Count(); got != 0 {
		t.Errorf("Count on empty set = %d, want 0", got)
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d, want 10", s.Len())
	}
}

func TestZeroSize(t *testing.T) {
	s := New(0)
	if s.Any() || s.FirstSet() != 0 || s.Count() != 0 {
		t.Error("zero-size set should be permanently empty")
	}
}

func TestSetClearGet(t *testing.T) {
	s := New(130) // spans 3 words
	for _, i := range []int{1, 2, 63, 64, 65, 127, 128, 129, 130} {
		if s.Get(i) {
			t.Errorf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestFirstSetOrder(t *testing.T) {
	s := New(200)
	s.Set(150)
	if got := s.FirstSet(); got != 150 {
		t.Errorf("FirstSet = %d, want 150", got)
	}
	s.Set(64)
	if got := s.FirstSet(); got != 64 {
		t.Errorf("FirstSet = %d, want 64", got)
	}
	s.Set(1)
	if got := s.FirstSet(); got != 1 {
		t.Errorf("FirstSet = %d, want 1", got)
	}
	s.Clear(1)
	s.Clear(64)
	if got := s.FirstSet(); got != 150 {
		t.Errorf("FirstSet after clears = %d, want 150", got)
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	bitsSet := []int{3, 64, 65, 128, 192, 300}
	for _, b := range bitsSet {
		s.Set(b)
	}
	var got []int
	for b := s.NextSet(0); b != 0; b = s.NextSet(b) {
		got = append(got, b)
	}
	if len(got) != len(bitsSet) {
		t.Fatalf("NextSet walk = %v, want %v", got, bitsSet)
	}
	for i := range got {
		if got[i] != bitsSet[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, bitsSet)
		}
	}
	if s.NextSet(300) != 0 {
		t.Error("NextSet past final bit should be 0")
	}
	if s.NextSet(-5) != 3 {
		t.Error("NextSet with negative start should behave like FirstSet")
	}
}

func TestNextSetWordBoundary(t *testing.T) {
	s := New(130)
	s.Set(64)
	s.Set(65)
	if got := s.NextSet(64); got != 65 {
		t.Errorf("NextSet(64) = %d, want 65", got)
	}
	if got := s.NextSet(65); got != 0 {
		t.Errorf("NextSet(65) = %d, want 0", got)
	}
}

func TestTestAndSetClear(t *testing.T) {
	s := New(64)
	if s.TestAndSet(7) {
		t.Error("TestAndSet on clear bit returned true")
	}
	if !s.TestAndSet(7) {
		t.Error("TestAndSet on set bit returned false")
	}
	if !s.TestAndClear(7) {
		t.Error("TestAndClear on set bit returned false")
	}
	if s.TestAndClear(7) {
		t.Error("TestAndClear on clear bit returned true")
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Set(1)
	s.Set(3)
	if got := s.String(); got != "1010" {
		t.Errorf("String = %q, want %q", got, "1010")
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	s := New(8)
	for _, i := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for index %d", i)
				}
			}()
			s.Set(i)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative size")
			}
		}()
		New(-1)
	}()
}

// TestConcurrentDistinctBits verifies that concurrent Set/Clear on distinct
// bits within the same word do not interfere (the reason SW updates must be
// atomic even though each list's bit is guarded by that list's lock).
func TestConcurrentDistinctBits(t *testing.T) {
	s := New(64)
	var wg sync.WaitGroup
	for b := 1; b <= 64; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				s.Set(b)
				if !s.Get(b) {
					t.Errorf("bit %d lost", b)
					return
				}
				s.Clear(b)
			}
			s.Set(b)
		}(b)
	}
	wg.Wait()
	if got := s.Count(); got != 64 {
		t.Errorf("Count = %d, want 64", got)
	}
}

// TestQuickAgainstMap property-tests the set against a reference map model.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const n = 197
		s := New(n)
		ref := map[int]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			i := int(op)%n + 1
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Get(i) != ref[i] {
					return false
				}
			}
		}
		// Compare full contents and first-set.
		want := 0
		for i := 1; i <= n; i++ {
			if s.Get(i) != ref[i] {
				return false
			}
			if ref[i] && want == 0 {
				want = i
			}
		}
		return s.FirstSet() == want && s.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFirstSet(b *testing.B) {
	s := New(256)
	s.Set(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.FirstSet() != 200 {
			b.Fatal("wrong bit")
		}
	}
}

func BenchmarkSetClear(b *testing.B) {
	s := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(100)
		s.Clear(100)
	}
}
