// Package bitset provides a fixed-size bit set with atomic per-bit
// operations and leading-one detection.
//
// It implements the m-bit control word SW of the paper (Section III-A):
// bit i is 1 iff the i-th parallel linked list of the task pool is
// nonempty. Processors locate the first nonempty list with a
// leading-one-detection operation; on the Cedar machine this was a single
// hardware instruction, here it is a word-wise scan using bits.TrailingZeros64
// over atomically loaded words.
//
// Bits are numbered starting at 1 to match the paper's 1-based loop
// numbering; index 0 is invalid.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Atomic is a fixed-size set of bits, each of which may be set, cleared and
// tested atomically. The zero value is not usable; use New.
//
// Individual bit operations are atomic, but multi-word scans (FirstSet, Any,
// Count) are not linearizable snapshots: concurrent mutation may yield a
// stale view. The task-pool SEARCH algorithm tolerates this by re-testing
// the chosen bit under the per-list lock (Algorithm 4).
type Atomic struct {
	n     int
	words []atomic.Uint64
}

// New returns a bit set holding bits 1..n, all clear.
func New(n int) *Atomic {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Atomic{
		n:     n,
		words: make([]atomic.Uint64, (n+64)/64),
	}
}

// Len returns the number of bits in the set (bits are 1..Len()).
func (s *Atomic) Len() int { return s.n }

func (s *Atomic) locate(i int) (word int, mask uint64) {
	if i < 1 || i > s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [1,%d]", i, s.n))
	}
	i--
	return i / 64, 1 << (uint(i) % 64)
}

// Set atomically sets bit i.
func (s *Atomic) Set(i int) {
	w, m := s.locate(i)
	s.words[w].Or(m)
}

// Clear atomically clears bit i.
func (s *Atomic) Clear(i int) {
	w, m := s.locate(i)
	s.words[w].And(^m)
}

// Get reports whether bit i is set.
func (s *Atomic) Get(i int) bool {
	w, m := s.locate(i)
	return s.words[w].Load()&m != 0
}

// TestAndSet atomically sets bit i and reports its previous value.
func (s *Atomic) TestAndSet(i int) bool {
	w, m := s.locate(i)
	return s.words[w].Or(m)&m != 0
}

// TestAndClear atomically clears bit i and reports its previous value.
func (s *Atomic) TestAndClear(i int) bool {
	w, m := s.locate(i)
	return s.words[w].And(^m)&m != 0
}

// FirstSet performs leading-one detection: it returns the lowest-numbered
// set bit, or 0 if the scanned view of the set is empty. The scan loads
// words atomically in index order but is not a snapshot of the whole set.
func (s *Atomic) FirstSet() int {
	for w := range s.words {
		v := s.words[w].Load()
		if v != 0 {
			return w*64 + bits.TrailingZeros64(v) + 1
		}
	}
	return 0
}

// NextSet returns the lowest-numbered set bit strictly greater than i, or 0
// if none is observed. i may be 0 to start a scan (equivalent to FirstSet).
func (s *Atomic) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return 0
	}
	// Bit b lives at 0-based position b-1; we want the lowest set
	// position >= i.
	w := i / 64
	v := s.words[w].Load() &^ (1<<(uint(i)%64) - 1)
	for {
		if v != 0 {
			b := w*64 + bits.TrailingZeros64(v) + 1
			if b > s.n {
				return 0
			}
			return b
		}
		w++
		if w >= len(s.words) {
			return 0
		}
		v = s.words[w].Load()
	}
}

// Any reports whether any bit was observed set.
func (s *Atomic) Any() bool {
	for w := range s.words {
		if s.words[w].Load() != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of bits observed set.
func (s *Atomic) Count() int {
	c := 0
	for w := range s.words {
		c += bits.OnesCount64(s.words[w].Load())
	}
	return c
}

// String renders the set as a bit string, bit 1 leftmost, e.g. "1010".
func (s *Atomic) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 1; i <= s.n; i++ {
		if s.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
