package flight

import (
	"strings"
	"sync"
	"testing"
)

func TestTailMergesAndOrders(t *testing.T) {
	r := New(2, 8)
	// Interleave events across processors with colliding times.
	r.Ring(0).Record(10, Begin, 0, 1, 5, 0)
	r.Ring(1).Record(10, Claim, 1, 1, 1, 2)
	r.Ring(0).Record(20, Claim, 0, 1, 3, 3)
	r.Ring(1).Record(15, Chunk, 1, 1, 2, 5)

	got := r.Tail(0)
	if len(got) != 4 {
		t.Fatalf("Tail(0) returned %d events, want 4", len(got))
	}
	// Global order: (At, Proc, Seq).
	want := []struct {
		at   int64
		proc int32
		kind Kind
	}{
		{10, 0, Begin}, {10, 1, Claim}, {15, 1, Chunk}, {20, 0, Claim},
	}
	for i, w := range want {
		e := got[i]
		if e.At != w.at || e.Proc != w.proc || e.Kind != w.kind {
			t.Errorf("event %d = %+v, want at=%d proc=%d kind=%s", i, e, w.at, w.proc, w.kind)
		}
	}

	if last := r.Tail(2); len(last) != 2 || last[0].At != 15 || last[1].At != 20 {
		t.Errorf("Tail(2) = %+v, want the 2 newest events", last)
	}
}

func TestRingWrapAroundKeepsNewest(t *testing.T) {
	r := New(1, 4)
	g := r.Ring(0)
	for i := int64(1); i <= 10; i++ {
		g.Record(i, Claim, 0, 1, i, i)
	}
	got := r.Tail(0)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(got))
	}
	for i, e := range got {
		if want := int64(7 + i); e.At != want {
			t.Errorf("event %d at t=%d, want t=%d (newest retained)", i, e.At, want)
		}
	}
	if n := r.Events(); n != 10 {
		t.Errorf("Events() = %d, want 10 (overwritten events still counted)", n)
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := New(1, 16)
	g := r.Ring(0)
	allocs := testing.AllocsPerRun(1000, func() {
		g.Record(1, Chunk, 0, 2, 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects per call, want 0", allocs)
	}
}

func TestConcurrentRecordAndTail(t *testing.T) {
	// One writer per ring, concurrent Tail readers: the watchdog path.
	// Run under -race in verify-replay.
	r := New(4, 32)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			g := r.Ring(p)
			for i := int64(0); i < 500; i++ {
				g.Record(i, Claim, int32(p), 1, i, i+1)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.Tail(16)
			_ = r.Dump(8)
		}
	}()
	wg.Wait()
	if n := r.Events(); n != 2000 {
		t.Fatalf("Events() = %d, want 2000", n)
	}
}

func TestDumpRendering(t *testing.T) {
	r := New(1, 8)
	g := r.Ring(0)
	g.Record(5, Begin, 0, 2, 10, 0)
	g.Record(7, Claim, 0, 2, 1, 4)
	g.Record(9, Chunk, 0, 2, 4, 10)
	g.Record(11, Switch, 0, 2, 0, 0)
	g.Record(13, Exit, 0, 2, 10, 0)
	g.Record(15, Barrier, 0, 1, 3, 0)

	d := r.Dump(16)
	for _, want := range []string{
		"flight recorder: 6 event(s) recorded, last 6:",
		"begin", "claim", "chunk", "switch", "exit", "barrier",
		"[1,4]", "done 4/10",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestKindString(t *testing.T) {
	if got := Claim.String(); got != "claim" {
		t.Errorf("Claim.String() = %q", got)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("Kind(99).String() = %q", got)
	}
}

func TestNewClampsCapacity(t *testing.T) {
	r := New(2, 0)
	r.Ring(1).Record(1, Begin, 1, 1, 1, 0)
	if got := r.Tail(0); len(got) != 1 {
		t.Fatalf("zero-capacity recorder retained %d events, want 1 (clamped)", len(got))
	}
	if r.Procs() != 2 {
		t.Errorf("Procs() = %d, want 2", r.Procs())
	}
}
