// Package flight implements the kernel flight recorder: a fixed-size,
// per-processor ring buffer of scheduling events (instance activation,
// chunk claims and completions, instance exits, barrier completions,
// hold switches) the execution kernel appends to as it drives the
// paper's algorithms. It is the forensic counterpart of core.Tracer —
// where a tracer streams every event to an observer, the recorder keeps
// only the last writes per processor, cheaply enough to leave on in a
// serving daemon, so a stuck-run diagnostic can ship the tail of what
// the scheduler actually did.
//
// Design constraints, in order:
//
//   - Zero cost when disabled: the kernel guards every Record call with
//     one nil test on a cached per-worker ring pointer. The benchmark
//     suite enforces that a recorder-less run stays bit-identical to
//     the committed baseline.
//   - Allocation-free when enabled: events are fixed-size structs stored
//     by value into a preallocated buffer; Record never allocates
//     (flight_test.go pins this with testing.AllocsPerRun).
//   - Host-side: recording charges no machine time and touches no
//     costed synchronization variable, so enabling the recorder cannot
//     change a virtual-time schedule.
//
// Each processor owns one ring (single writer), so the hot path never
// contends with other recorders; the per-ring mutex exists only to make
// concurrent tail reads (a watchdog diagnosing a live run) race-free,
// and is effectively uncontended.
package flight

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind identifies a scheduling event.
type Kind uint8

// Event kinds. The A/B payload fields are kind-specific; see Event.
const (
	// Begin: an instance was activated (ICB created and appended).
	// A = bound, B = first enclosing index (0 at the outermost level).
	Begin Kind = 1 + iota
	// Claim: a chunk of iterations was claimed. A = lo, B = hi.
	Claim
	// Chunk: a claimed chunk finished executing. A = iterations done so
	// far (icount after the chunk), B = bound.
	Chunk
	// Exit: an instance completed (its final iteration finished and the
	// EXIT walk ran). A = bound, B = first enclosing index.
	Exit
	// Barrier: a BAR_COUNT barrier filled — the whole enclosing parallel
	// loop finished. Loop is the structural loop's ID. A = bound.
	Barrier
	// Switch: a processor dropped an exhausted hold to SEARCH for new
	// work ({pcount Decrement} on an instance with nothing left).
	Switch
)

var kindNames = [...]string{
	Begin: "begin", Claim: "claim", Chunk: "chunk",
	Exit: "exit", Barrier: "barrier", Switch: "switch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded scheduling event. At is engine time (virtual
// units on the simulator, nanoseconds on the real engines); Seq orders
// events of one processor (engine time alone may tie).
type Event struct {
	At   int64
	Seq  uint64
	Kind Kind
	Proc int32
	Loop int32
	A, B int64
}

// String renders the event in the dump format of Recorder.Dump.
func (e Event) String() string {
	switch e.Kind {
	case Begin, Exit:
		return fmt.Sprintf("t=%-8d p%-2d %-7s loop %d bound %d", e.At, e.Proc, e.Kind, e.Loop, e.A)
	case Claim:
		return fmt.Sprintf("t=%-8d p%-2d %-7s loop %d [%d,%d]", e.At, e.Proc, e.Kind, e.Loop, e.A, e.B)
	case Chunk:
		return fmt.Sprintf("t=%-8d p%-2d %-7s loop %d done %d/%d", e.At, e.Proc, e.Kind, e.Loop, e.A, e.B)
	case Barrier:
		return fmt.Sprintf("t=%-8d p%-2d %-7s loop %d bound %d", e.At, e.Proc, e.Kind, e.Loop, e.A)
	default:
		return fmt.Sprintf("t=%-8d p%-2d %-7s loop %d", e.At, e.Proc, e.Kind, e.Loop)
	}
}

// Ring is one processor's event ring. Exactly one goroutine (the owning
// processor) may call Record; Tail readers may run concurrently with it.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // events ever recorded; buf[(seq-1)%len] is the newest
	// pad keeps adjacent rings in the Recorder's slice from sharing a
	// cache line (Record writes mu and seq on every event).
	_ [64]byte
}

// Record appends one event. It never allocates; the oldest event is
// overwritten once the ring is full.
func (g *Ring) Record(at int64, k Kind, proc, loop int32, a, b int64) {
	g.mu.Lock()
	g.buf[g.seq%uint64(len(g.buf))] = Event{
		At: at, Seq: g.seq, Kind: k, Proc: proc, Loop: loop, A: a, B: b,
	}
	g.seq++
	g.mu.Unlock()
}

// snapshot appends the ring's retained events (oldest first) to dst.
func (g *Ring) snapshot(dst []Event) []Event {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.seq
	cap64 := uint64(len(g.buf))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	for i := start; i < n; i++ {
		dst = append(dst, g.buf[i%cap64])
	}
	return dst
}

// Recorder is a set of per-processor rings covering one run.
type Recorder struct {
	rings []*Ring
}

// New returns a recorder for nprocs processors retaining up to perProc
// events each. perProc below 1 is raised to 1.
func New(nprocs, perProc int) *Recorder {
	if nprocs < 1 {
		panic(fmt.Sprintf("flight: recorder for %d processors", nprocs))
	}
	if perProc < 1 {
		perProc = 1
	}
	r := &Recorder{rings: make([]*Ring, nprocs)}
	for i := range r.rings {
		r.rings[i] = &Ring{buf: make([]Event, perProc)}
	}
	return r
}

// Ring returns processor proc's ring; the kernel caches the pointer per
// worker so the hot path pays one nil test when recording is off.
func (r *Recorder) Ring(proc int) *Ring { return r.rings[proc] }

// Procs returns the number of processors the recorder covers.
func (r *Recorder) Procs() int { return len(r.rings) }

// Events returns the total number of events ever recorded (including
// overwritten ones).
func (r *Recorder) Events() uint64 {
	var n uint64
	for _, g := range r.rings {
		g.mu.Lock()
		n += g.seq
		g.mu.Unlock()
	}
	return n
}

// Tail merges the rings and returns the last n events in global order
// (by engine time, ties broken by processor then sequence). n <= 0
// returns everything retained. Safe to call while the run is in flight.
func (r *Recorder) Tail(n int) []Event {
	var all []Event
	for _, g := range r.rings {
		all = g.snapshot(all)
	}
	sort.Slice(all, func(i, k int) bool {
		a, b := all[i], all[k]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Dump renders the merged tail of the last n events, one per line, for
// diagnostic reports (core.Diagnoser folds this into stuck-run dumps).
func (r *Recorder) Dump(n int) string {
	tail := r.Tail(n)
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d event(s) recorded, last %d:\n", r.Events(), len(tail))
	for _, e := range tail {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
