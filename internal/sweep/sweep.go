// Package sweep drives processor-count × scheme parameter sweeps over a
// workload on the virtual machine and reports speedup tables — the
// standard way to look at a scheduling paper's results — with CSV export
// for external plotting.
package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/descr"
	"repro/internal/loopir"
	"repro/internal/lowsched"
	"repro/internal/metrics"
	"repro/internal/vmachine"
)

// Config describes a sweep.
type Config struct {
	// Nest builds the workload (a fresh nest per run).
	Nest func() *loopir.Nest
	// Procs are the processor counts to sweep.
	Procs []int
	// Schemes are low-level scheme specifications (lowsched.Parse).
	Schemes []string
	// AccessCost is the virtual machine's access cost (default 10).
	AccessCost int64
	// RemotePenalty is the NUMA penalty (default 0).
	RemotePenalty int64
	// Pool selects the task-pool organization.
	Pool core.PoolKind
}

// Row is one sweep measurement.
type Row struct {
	P           int
	Scheme      string
	Makespan    int64
	Utilization float64
	// Speedup is the one-processor SS makespan divided by this run's.
	Speedup   float64
	Imbalance float64
	Chunks    int64
	Searches  int64
}

// Run executes the sweep. The serial baseline (speedup denominator) is
// the P=1 run under SS.
func Run(cfg Config) ([]Row, error) {
	if cfg.Nest == nil {
		return nil, fmt.Errorf("sweep: config requires a Nest builder")
	}
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{1, 2, 4, 8, 16}
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ss", "gss"}
	}
	if cfg.AccessCost <= 0 {
		cfg.AccessCost = 10
	}

	one := func(p int, scheme lowsched.Scheme) (*core.Report, error) {
		std, err := cfg.Nest().Standardize()
		if err != nil {
			return nil, err
		}
		prog, err := descr.Compile(std)
		if err != nil {
			return nil, err
		}
		return core.Run(prog, core.Config{
			Engine: vmachine.New(vmachine.Config{
				P:             p,
				AccessCost:    cfg.AccessCost,
				RemotePenalty: cfg.RemotePenalty,
			}),
			Scheme: scheme,
			Pool:   cfg.Pool,
		})
	}

	base, err := one(1, lowsched.SS{})
	if err != nil {
		return nil, err
	}
	serial := float64(base.Makespan)

	var rows []Row
	for _, spec := range cfg.Schemes {
		scheme, err := lowsched.Parse(spec)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.Procs {
			rep, err := one(p, scheme)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s P=%d: %w", scheme.Name(), p, err)
			}
			rows = append(rows, Row{
				P:           p,
				Scheme:      rep.Scheme,
				Makespan:    rep.Makespan,
				Utilization: rep.Utilization(),
				Speedup:     serial / float64(rep.Makespan),
				Imbalance:   metrics.Imbalance(rep.Busy),
				Chunks:      rep.Stats.Chunks,
				Searches:    rep.Stats.Searches,
			})
		}
	}
	return rows, nil
}

// WriteCSV writes the rows with a header line.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"procs", "scheme", "makespan", "utilization", "speedup", "imbalance", "chunks", "searches",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.P), r.Scheme,
			strconv.FormatInt(r.Makespan, 10),
			strconv.FormatFloat(r.Utilization, 'f', 4, 64),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
			strconv.FormatFloat(r.Imbalance, 'f', 3, 64),
			strconv.FormatInt(r.Chunks, 10),
			strconv.FormatInt(r.Searches, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the rows as an aligned text table.
func Table(title string, rows []Row) string {
	tb := metrics.NewTable(title, "P", "scheme", "makespan", "eta", "speedup", "imbalance", "chunks")
	for _, r := range rows {
		tb.Add(r.P, r.Scheme, r.Makespan, r.Utilization, r.Speedup, r.Imbalance, r.Chunks)
	}
	return tb.String()
}
