package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/workload"
)

func TestRunSpeedupShape(t *testing.T) {
	cfg := Config{
		Nest:    func() *loopir.Nest { return workload.UniformDoall(512, 200) },
		Procs:   []int{1, 2, 4, 8},
		Schemes: []string{"ss", "gss"},
	}
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Speedup grows with P for each scheme on a coarse uniform loop.
	byScheme := map[string][]Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	for scheme, rs := range byScheme {
		for i := 1; i < len(rs); i++ {
			if rs[i].Speedup <= rs[i-1].Speedup {
				t.Errorf("%s: speedup not increasing: %+v", scheme, rs)
				break
			}
		}
		last := rs[len(rs)-1]
		if last.P == 8 && (last.Speedup < 5 || last.Speedup > 8.2) {
			t.Errorf("%s: speedup at P=8 = %.2f, want near-linear", scheme, last.Speedup)
		}
	}
	// P=1 SS speedup is 1 by construction.
	for _, r := range rows {
		if r.P == 1 && r.Scheme == "SS" && (r.Speedup < 0.999 || r.Speedup > 1.001) {
			t.Errorf("P=1 SS speedup = %v, want 1", r.Speedup)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Nest:    func() *loopir.Nest { return workload.Branchy(12, 16, 8, 100, 5) },
		Procs:   []int{4},
		Schemes: []string{"gss"},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("sweep rows differ across runs: %+v vs %+v", a[0], b[0])
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{{P: 4, Scheme: "GSS", Makespan: 123, Utilization: 0.5, Speedup: 3.2, Imbalance: 1.1, Chunks: 7, Searches: 9}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "procs,scheme,makespan") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "4,GSS,123,0.5000,3.200,1.100,7,9") {
		t.Errorf("missing row: %q", out)
	}
}

func TestTable(t *testing.T) {
	rows := []Row{{P: 2, Scheme: "SS", Makespan: 10, Utilization: 1, Speedup: 2, Imbalance: 1, Chunks: 5}}
	out := Table("demo", rows)
	for _, want := range []string{"## demo", "scheme", "SS", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunDefaults(t *testing.T) {
	rows, err := Run(Config{
		Nest: func() *loopir.Nest { return workload.UniformDoall(64, 100) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: procs {1,2,4,8,16} x schemes {ss, gss} = 10 rows.
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil Nest accepted")
	}
	if _, err := Run(Config{
		Nest:    func() *loopir.Nest { return workload.UniformDoall(4, 1) },
		Schemes: []string{"bogus"},
	}); err == nil {
		t.Error("bad scheme accepted")
	}
}
