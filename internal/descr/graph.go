package descr

import (
	"fmt"
	"strings"

	"repro/internal/loopir"
)

// GNodeKind discriminates macro-dataflow graph nodes.
type GNodeKind uint8

const (
	// GInstance is a circular node of Fig. 4: one instance of an innermost
	// parallel loop.
	GInstance GNodeKind = iota
	// GCond is a diamond node of Fig. 4: one instance of an IF condition.
	GCond
)

// GNode is one node of the macro-dataflow graph.
type GNode struct {
	Kind GNodeKind
	// Leaf is the loop number for GInstance nodes (0 for GCond).
	Leaf int
	// Label is the loop or IF label.
	Label string
	// IVec is the index vector of the enclosing loops (real loops only).
	IVec loopir.IVec
}

// Key returns the canonical identity, e.g. "B(1,2)" or "if:P(1)".
func (n GNode) Key() string {
	if n.Kind == GCond {
		return "if:" + n.Label + n.IVec.String()
	}
	return n.Label + n.IVec.String()
}

// Edge is a precedence edge. For edges leaving a GCond node, Branch is
// "T" or "F"; otherwise it is empty.
type Edge struct {
	From, To int
	Branch   string
}

// Graph is the macro-dataflow graph of a program (Fig. 4): instance nodes,
// condition nodes, and activation edges. IF conditions are not evaluated:
// both branches appear, labeled T and F.
type Graph struct {
	Nodes []GNode
	Edges []Edge
	index map[string]int
}

// NodeByKey returns the index of the node with the given key, or -1.
func (g *Graph) NodeByKey(key string) int {
	if i, ok := g.index[key]; ok {
		return i
	}
	return -1
}

// Preds returns the predecessor node indexes of node i.
func (g *Graph) Preds(i int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.To == i {
			out = append(out, e.From)
		}
	}
	return out
}

// Succs returns the successor node indexes of node i.
func (g *Graph) Succs(i int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == i {
			out = append(out, e.To)
		}
	}
	return out
}

// BuildGraph constructs the macro-dataflow graph by symbolic enumeration.
// It requires every loop bound to be evaluable from enclosing indexes
// alone (constants or index functions); data-dependent bounds cannot be
// enumerated statically and are reported as a panic from the bound
// function itself, if any.
func BuildGraph(p *Program) *Graph {
	g := &Graph{index: map[string]int{}}
	b := &gbuilder{g: g, p: p}
	b.seq(p.Nest.Root, nil)
	return g
}

type gbuilder struct {
	g *Graph
	p *Program
}

func (b *gbuilder) addNode(n GNode) int {
	key := n.Key()
	if i, ok := b.g.index[key]; ok {
		return i
	}
	b.g.Nodes = append(b.g.Nodes, n)
	i := len(b.g.Nodes) - 1
	b.g.index[key] = i
	return i
}

func (b *gbuilder) addEdge(from, to int, branch string) {
	b.g.Edges = append(b.g.Edges, Edge{From: from, To: to, Branch: branch})
}

func (b *gbuilder) edgeAll(froms, tos []int, branch string) {
	for _, f := range froms {
		for _, t := range tos {
			b.addEdge(f, t, branch)
		}
	}
}

// seq builds nodes for a construct sequence in context iv and returns its
// source nodes (activated when the sequence starts) and sink nodes (whose
// completion finishes the sequence). Zero-trip constructs are transparent.
func (b *gbuilder) seq(nodes []*loopir.Node, iv loopir.IVec) (sources, sinks []int) {
	var prevSinks []int
	for _, nd := range nodes {
		src, snk := b.construct(nd, iv)
		if len(src) == 0 && len(snk) == 0 {
			continue // transparent (zero-trip)
		}
		b.edgeAll(prevSinks, src, "")
		if sources == nil {
			sources = src
		}
		prevSinks = snk
	}
	return sources, prevSinks
}

func (b *gbuilder) construct(nd *loopir.Node, iv loopir.IVec) (sources, sinks []int) {
	switch nd.Kind {
	case loopir.KindDoall, loopir.KindDoacross:
		if nd.IsLeaf() {
			if nd.Bound.Eval(iv) == 0 {
				// Zero-trip instance: completes vacuously, never becomes
				// an ICB — transparent in the graph, exactly as in the
				// executor.
				return nil, nil
			}
			n := b.addNode(GNode{Kind: GInstance, Leaf: b.p.NumOf(nd), Label: nd.Label, IVec: iv.Clone()})
			return []int{n}, []int{n}
		}
		// Structural parallel loop: all iterations activate together
		// (fan-out) and the barrier joins all their sinks (fan-in).
		bound := nd.Bound.Eval(iv)
		for k := int64(1); k <= bound; k++ {
			s, e := b.seq(nd.Body, append(iv.Clone(), k))
			sources = append(sources, s...)
			sinks = append(sinks, e...)
		}
		return sources, sinks
	case loopir.KindSerial:
		bound := nd.Bound.Eval(iv)
		var prev []int
		for k := int64(1); k <= bound; k++ {
			s, e := b.seq(nd.Body, append(iv.Clone(), k))
			if len(s) == 0 && len(e) == 0 {
				continue
			}
			b.edgeAll(prev, s, "")
			if sources == nil {
				sources = s
			}
			prev = e
		}
		return sources, prev
	case loopir.KindIf:
		c := b.addNode(GNode{Kind: GCond, Label: nd.Label, IVec: iv.Clone()})
		sT, kT := b.seq(nd.Then, iv)
		sF, kF := b.seq(nd.Else, iv)
		b.edgeAll([]int{c}, sT, "T")
		b.edgeAll([]int{c}, sF, "F")
		sinks = append(sinks, kT...)
		sinks = append(sinks, kF...)
		if len(sT) == 0 || len(sF) == 0 {
			// An empty branch means the condition node itself completes
			// the construct on that path.
			sinks = append(sinks, c)
		}
		return []int{c}, sinks
	default:
		panic(fmt.Sprintf("descr: unexpected %v in standardized nest", nd.Kind))
	}
}

// DOT renders the graph in Graphviz format, circles for instances and
// diamonds for condition nodes, in the style of Fig. 4.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph macrodataflow {\n  rankdir=TB;\n")
	for i, n := range g.Nodes {
		shape := "circle"
		if n.Kind == GCond {
			shape = "diamond"
		}
		fmt.Fprintf(&sb, "  n%d [shape=%s, label=%q];\n", i, shape, n.Key())
	}
	for _, e := range g.Edges {
		attr := ""
		if e.Branch != "" {
			attr = fmt.Sprintf(" [label=%q]", e.Branch)
		}
		fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", e.From, e.To, attr)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// InitialNodes returns the nodes without predecessors (active at start,
// like A1 and A2 in Fig. 4).
func (g *Graph) InitialNodes() []GNode {
	hasPred := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		hasPred[e.To] = true
	}
	var out []GNode
	for i, n := range g.Nodes {
		if !hasPred[i] {
			out = append(out, n)
		}
	}
	return out
}
