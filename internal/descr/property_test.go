package descr

import (
	"testing"

	"repro/internal/workload"
)

// TestDescriptorInvariantsOnRandomPrograms compiles hundreds of random
// programs and checks structural invariants of the emitted descriptors:
//
//   - every leaf has Depth >= 1 and exactly Depth level records;
//   - level 1 is the virtual root (serial, bound 1, LoopID 0);
//   - Next values are valid leaf numbers; a non-Last level always has a
//     Next; a Last level of a serial loop has a wrap-around Next; a Last
//     level of a parallel loop has Next 0;
//   - guard Altern values are valid leaf numbers or 0;
//   - the entry leaf is a valid leaf number.
func TestDescriptorInvariantsOnRandomPrograms(t *testing.T) {
	n := int64(300)
	if testing.Short() {
		n = 50
	}
	for seed := int64(0); seed < n; seed++ {
		nest := workload.Random(seed, workload.DefaultRandConfig())
		std, err := nest.Standardize()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := Compile(std)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prog.Entry < 1 || prog.Entry > prog.M {
			t.Fatalf("seed %d: entry %d out of range", seed, prog.Entry)
		}
		for _, leaf := range prog.Leaves() {
			if leaf.Depth < 1 {
				t.Fatalf("seed %d leaf %s: depth %d", seed, leaf.Node.Label, leaf.Depth)
			}
			if len(leaf.Levels) != leaf.Depth+1 {
				t.Fatalf("seed %d leaf %s: %d level records for depth %d",
					seed, leaf.Node.Label, len(leaf.Levels), leaf.Depth)
			}
			root := leaf.Levels[1]
			if root.Parallel || root.LoopID != 0 {
				t.Fatalf("seed %d leaf %s: level 1 not the virtual root: %+v",
					seed, leaf.Node.Label, root)
			}
			if b, ok := root.Bound.IsStatic(); !ok || b != 1 {
				t.Fatalf("seed %d leaf %s: root bound %v", seed, leaf.Node.Label, root.Bound)
			}
			for lvl := 1; lvl <= leaf.Depth; lvl++ {
				d := leaf.Levels[lvl]
				if d.Next < 0 || d.Next > prog.M {
					t.Fatalf("seed %d leaf %s level %d: next %d out of range",
						seed, leaf.Node.Label, lvl, d.Next)
				}
				switch {
				case !d.Last && d.Next == 0:
					t.Fatalf("seed %d leaf %s level %d: non-last without successor",
						seed, leaf.Node.Label, lvl)
				case d.Last && !d.Parallel && d.Next == 0:
					t.Fatalf("seed %d leaf %s level %d: last-in-serial without wrap",
						seed, leaf.Node.Label, lvl)
				case d.Last && d.Parallel && d.Next != 0:
					t.Fatalf("seed %d leaf %s level %d: last-in-parallel has next %d",
						seed, leaf.Node.Label, lvl, d.Next)
				}
				if lvl >= 2 && d.LoopID == 0 {
					t.Fatalf("seed %d leaf %s level %d: missing loop ID",
						seed, leaf.Node.Label, lvl)
				}
				for _, g := range d.Guards {
					if g.Cond == nil {
						t.Fatalf("seed %d leaf %s level %d: nil guard cond",
							seed, leaf.Node.Label, lvl)
					}
					if g.Altern < 0 || g.Altern > prog.M {
						t.Fatalf("seed %d leaf %s level %d: altern %d out of range",
							seed, leaf.Node.Label, lvl, g.Altern)
					}
				}
			}
		}
	}
}

// TestGraphInvariantsOnRandomPrograms builds the macro-dataflow graph of
// random programs and checks: the executed (reference) instances are a
// subset of the graph's instance nodes, and the graph is acyclic.
func TestGraphInvariantsOnRandomPrograms(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 30
	}
	for seed := int64(0); seed < n; seed++ {
		nest := workload.Random(seed, workload.DefaultRandConfig())
		std, err := nest.Standardize()
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(std)
		if err != nil {
			t.Fatal(err)
		}
		g := BuildGraph(prog)
		// Acyclicity via Kahn's algorithm.
		indeg := make([]int, len(g.Nodes))
		adj := make([][]int, len(g.Nodes))
		for _, e := range g.Edges {
			indeg[e.To]++
			adj[e.From] = append(adj[e.From], e.To)
		}
		var queue []int
		for i, d := range indeg {
			if d == 0 {
				queue = append(queue, i)
			}
		}
		visited := 0
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			visited++
			for _, v := range adj[u] {
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
		if visited != len(g.Nodes) {
			t.Fatalf("seed %d: macro-dataflow graph has a cycle (%d of %d nodes sorted)",
				seed, visited, len(g.Nodes))
		}
	}
}
