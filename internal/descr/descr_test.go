package descr

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/workload"
)

func compile(t *testing.T, f func(b *loopir.B)) *Program {
	t.Helper()
	nest, err := loopir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	std, err := nest.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(std)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compileFig1(t *testing.T) *Program {
	t.Helper()
	p, err := Compile(workload.Fig1Std(workload.DefaultFig1()))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func leafByLabel(t *testing.T, p *Program, label string) *LeafInfo {
	t.Helper()
	for _, l := range p.Leaves() {
		if l.Node.Label == label {
			return l
		}
	}
	t.Fatalf("no leaf %q", label)
	return nil
}

func TestCompileRequiresStandardized(t *testing.T) {
	nest := loopir.MustBuild(func(b *loopir.B) {
		b.Stmt("s", func(loopir.Env, loopir.IVec) {})
	})
	if _, err := Compile(nest); err == nil {
		t.Error("Compile accepted a raw nest")
	}
}

func TestFig1Structure(t *testing.T) {
	p := compileFig1(t)
	if p.M != 8 {
		t.Fatalf("M = %d, want 8", p.M)
	}
	var labels []string
	for _, l := range p.Leaves() {
		labels = append(labels, l.Node.Label)
	}
	if fmt.Sprint(labels) != "[A B C D E F G H]" {
		t.Errorf("numbering = %v, want A..H in program order", labels)
	}
	if p.Leaf(p.Entry).Node.Label != "A" {
		t.Errorf("entry = %s, want A", p.Leaf(p.Entry).Node.Label)
	}
}

func TestFig1DepthBound(t *testing.T) {
	p := compileFig1(t)
	// Paper depths (Fig. 5): A:1 B:2 C:2 D:2 E:1 F:0 G:0 H:0.
	want := map[string]int{"A": 1, "B": 2, "C": 2, "D": 2, "E": 1, "F": 0, "G": 0, "H": 0}
	for label, d := range want {
		if got := leafByLabel(t, p, label).PaperDepth(); got != d {
			t.Errorf("DEPTH(%s) = %d, want %d", label, got, d)
		}
	}
	out := p.FormatDepthBound()
	if !strings.Contains(out, "loop  DEPTH  BOUND") || !strings.Contains(out, "A") {
		t.Errorf("FormatDepthBound:\n%s", out)
	}
}

func TestFig1Descriptors(t *testing.T) {
	p := compileFig1(t)
	num := func(label string) int { return leafByLabel(t, p, label).Num }

	type want struct {
		level    int // internal level
		parallel bool
		last     bool
		next     int // leaf number; 0 = none
		loop     string
		guards   int
	}
	cases := map[string][]want{
		// A: inside I (level 2), root (level 1).
		"A": {
			{2, true, false, num("B"), "I", 0},
			{1, false, false, num("F"), "<program>", 0},
		},
		// B: inside J (3), I (2), root (1).
		"B": {
			{3, true, true, 0, "J", 0},
			{2, true, false, num("C"), "I", 0},
			{1, false, false, num("F"), "<program>", 0},
		},
		// C: inside K (3, serial), I (2), root (1).
		"C": {
			{3, false, false, num("D"), "K", 0},
			{2, true, false, num("E"), "I", 0},
			{1, false, false, num("F"), "<program>", 0},
		},
		// D: last in serial K -> next wraps to C; K followed by E in I.
		"D": {
			{3, false, true, num("C"), "K", 0},
			{2, true, false, num("E"), "I", 0},
			{1, false, false, num("F"), "<program>", 0},
		},
		// E: last construct of I; I followed by the IF at top level.
		"E": {
			{2, true, true, 0, "I", 0},
			{1, false, false, num("F"), "<program>", 0},
		},
		// F: top level, guarded by IF P; the IF is followed by H.
		"F": {
			{1, false, false, num("H"), "<program>", 1},
		},
		// G: FALSE branch: no guard of its own (paper's conditnl
		// convention); successor is H.
		"G": {
			{1, false, false, num("H"), "<program>", 0},
		},
		// H: last at top level; serial wrap next points back to A
		// (never used: the root has bound 1).
		"H": {
			{1, false, true, num("A"), "<program>", 0},
		},
	}
	for label, ws := range cases {
		leaf := leafByLabel(t, p, label)
		if leaf.Depth != len(ws) {
			t.Errorf("%s: internal depth = %d, want %d", label, leaf.Depth, len(ws))
			continue
		}
		for _, w := range ws {
			d := leaf.Levels[w.level]
			if d.Parallel != w.parallel || d.Last != w.last || d.Next != w.next ||
				d.LoopLabel != w.loop || len(d.Guards) != w.guards {
				t.Errorf("%s level %d: got {par=%v last=%v next=%d loop=%q guards=%d}, want {par=%v last=%v next=%d loop=%q guards=%d}",
					label, w.level, d.Parallel, d.Last, d.Next, d.LoopLabel, len(d.Guards),
					w.parallel, w.last, w.next, w.loop, w.guards)
			}
		}
	}

	// F's guard must dispatch to G.
	f := leafByLabel(t, p, "F")
	g := f.Levels[1].Guards[0]
	if g.Altern != num("G") || g.Label != "P" {
		t.Errorf("F guard = %+v, want altern=G label=P", g)
	}
}

func TestFig1DescriptorRendering(t *testing.T) {
	p := compileFig1(t)
	out := p.FormatDescriptors()
	for _, want := range []string{"DESCRPT_A", "DESCRPT_H", "(top level)", "conditnl=yes P->G", "next=C"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatDescriptors missing %q:\n%s", want, out)
		}
	}
}

func TestSuccessorInsideIfBranch(t *testing.T) {
	// IF c { X; Y } Z: X's successor is Y (in-branch); Y's successor is Z.
	// Both X and Y carry the guard c (so a FALSE evaluation propagates the
	// skip through the dead branch).
	p := compile(t, func(b *loopir.B) {
		it := func(loopir.Env, loopir.IVec, int64) {}
		b.If("c", func(loopir.IVec) bool { return true }, func(b *loopir.B) {
			b.DoallLeaf("X", loopir.Const(1), it)
			b.DoallLeaf("Y", loopir.Const(1), it)
		}, nil)
		b.DoallLeaf("Z", loopir.Const(1), it)
	})
	x := leafByLabel(t, p, "X")
	y := leafByLabel(t, p, "Y")
	z := leafByLabel(t, p, "Z")
	if x.Levels[1].Next != y.Num || x.Levels[1].Last {
		t.Errorf("X: next=%d last=%v, want next=Y", x.Levels[1].Next, x.Levels[1].Last)
	}
	if y.Levels[1].Next != z.Num || y.Levels[1].Last {
		t.Errorf("Y: next=%d last=%v, want next=Z", y.Levels[1].Next, y.Levels[1].Last)
	}
	if len(x.Levels[1].Guards) != 1 || len(y.Levels[1].Guards) != 1 {
		t.Errorf("X/Y guard counts = %d/%d, want 1/1",
			len(x.Levels[1].Guards), len(y.Levels[1].Guards))
	}
	if x.Levels[1].Guards[0].Altern != 0 {
		t.Errorf("empty FALSE branch should give altern 0, got %d", x.Levels[1].Guards[0].Altern)
	}
}

func TestNestedIfGuards(t *testing.T) {
	// IF c1 { IF c2 { B } else { C } } else { A-else }:
	// B carries guards [c1, c2]; C carries [c1] only (it is c2's ELSE but
	// c1's THEN); the else-branch leaf carries none.
	p := compile(t, func(b *loopir.B) {
		it := func(loopir.Env, loopir.IVec, int64) {}
		b.If("c1", func(loopir.IVec) bool { return true }, func(b *loopir.B) {
			b.If("c2", func(loopir.IVec) bool { return true }, func(b *loopir.B) {
				b.DoallLeaf("B", loopir.Const(1), it)
			}, func(b *loopir.B) {
				b.DoallLeaf("C", loopir.Const(1), it)
			})
		}, func(b *loopir.B) {
			b.DoallLeaf("E", loopir.Const(1), it)
		})
	})
	bGuards := leafByLabel(t, p, "B").Levels[1].Guards
	if len(bGuards) != 2 || bGuards[0].Label != "c1" || bGuards[1].Label != "c2" {
		t.Errorf("B guards = %+v, want [c1 c2] outermost first", bGuards)
	}
	if bGuards[0].Altern != leafByLabel(t, p, "E").Num {
		t.Errorf("B guard c1 altern = %d, want E", bGuards[0].Altern)
	}
	if bGuards[1].Altern != leafByLabel(t, p, "C").Num {
		t.Errorf("B guard c2 altern = %d, want C", bGuards[1].Altern)
	}
	cGuards := leafByLabel(t, p, "C").Levels[1].Guards
	if len(cGuards) != 1 || cGuards[0].Label != "c1" {
		t.Errorf("C guards = %+v, want [c1]", cGuards)
	}
	if len(leafByLabel(t, p, "E").Levels[1].Guards) != 0 {
		t.Error("E (ELSE leaf) should carry no guards")
	}
}

func TestEntryThroughIf(t *testing.T) {
	// A program starting with an IF: entry is the THEN-branch leaf.
	p := compile(t, func(b *loopir.B) {
		it := func(loopir.Env, loopir.IVec, int64) {}
		b.If("c", func(loopir.IVec) bool { return true }, func(b *loopir.B) {
			b.DoallLeaf("T", loopir.Const(1), it)
		}, func(b *loopir.B) {
			b.DoallLeaf("E", loopir.Const(1), it)
		})
	})
	if p.Leaf(p.Entry).Node.Label != "T" {
		t.Errorf("entry = %s, want T", p.Leaf(p.Entry).Node.Label)
	}
}

func TestGuardLevelPlacement(t *testing.T) {
	// The IF sits inside loop I: the guard must be on level 2 (loop I),
	// not on the root level.
	p := compile(t, func(b *loopir.B) {
		it := func(loopir.Env, loopir.IVec, int64) {}
		b.Doall("I", loopir.Const(2), func(b *loopir.B) {
			b.If("c", func(iv loopir.IVec) bool { return iv[0] == 1 }, func(b *loopir.B) {
				b.DoallLeaf("F", loopir.Const(1), it)
			}, nil)
		})
	})
	f := leafByLabel(t, p, "F")
	if len(f.Levels[2].Guards) != 1 || len(f.Levels[1].Guards) != 0 {
		t.Errorf("guards at levels (1,2) = (%d,%d), want (0,1)",
			len(f.Levels[1].Guards), len(f.Levels[2].Guards))
	}
}

func TestDeepDynamicBounds(t *testing.T) {
	p := compile(t, func(b *loopir.B) {
		b.Doall("I", loopir.Const(3), func(b *loopir.B) {
			b.Serial("K", loopir.BoundFn(func(iv loopir.IVec) int64 { return iv[0] }), func(b *loopir.B) {
				b.DoallLeaf("T", loopir.BoundFn(func(iv loopir.IVec) int64 { return iv[0] + iv[1] }),
					func(loopir.Env, loopir.IVec, int64) {})
			})
		})
	})
	tl := leafByLabel(t, p, "T")
	if tl.Depth != 3 {
		t.Fatalf("depth = %d, want 3", tl.Depth)
	}
	if got := tl.Levels[3].Bound.Eval(loopir.IVec{2}); got != 2 {
		t.Errorf("K bound at I=2: %d, want 2", got)
	}
	if got := tl.Node.Bound.Eval(loopir.IVec{2, 1}); got != 3 {
		t.Errorf("T bound at (2,1): %d, want 3", got)
	}
}

func TestLeafAccessors(t *testing.T) {
	p := compileFig1(t)
	if p.NumOf(p.Leaf(3).Node) != 3 {
		t.Error("NumOf(Leaf(3)) != 3")
	}
	if p.NumOf(&loopir.Node{}) != 0 {
		t.Error("NumOf(foreign node) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Leaf(0) did not panic")
		}
	}()
	p.Leaf(0)
}

// --- Macro-dataflow graph (Fig. 4) ---

func TestFig1Graph(t *testing.T) {
	p := compileFig1(t)
	g := BuildGraph(p)

	// Initially active: A(1), A(2) — the paper's A1, A2.
	var init []string
	for _, n := range g.InitialNodes() {
		init = append(init, n.Key())
	}
	sort.Strings(init)
	if fmt.Sprint(init) != "[A(1) A(2)]" {
		t.Errorf("initial nodes = %v, want [A(1) A(2)]", init)
	}

	edge := func(from, to string) bool {
		f, t2 := g.NodeByKey(from), g.NodeByKey(to)
		if f < 0 || t2 < 0 {
			return false
		}
		for _, e := range g.Edges {
			if e.From == f && e.To == t2 {
				return true
			}
		}
		return false
	}
	wantEdges := [][2]string{
		// A's completion activates both instances of B (fan-out over J).
		{"A(1)", "B(1,1)"}, {"A(1)", "B(1,2)"}, {"A(2)", "B(2,1)"}, {"A(2)", "B(2,2)"},
		// J's barrier joins into C of serial K's first iteration.
		{"B(1,1)", "C(1,1)"}, {"B(1,2)", "C(1,1)"},
		// Serial K: C->D within an iteration, D->C across iterations.
		{"C(1,1)", "D(1,1)"}, {"D(1,1)", "C(1,2)"},
		// K exhausted: D of the last iteration activates E.
		{"D(1,2)", "E(1)"},
		// I's barrier joins E(1), E(2) into the IF's condition node.
		{"E(1)", "if:P()"}, {"E(2)", "if:P()"},
		// The diamond activates either F or G; both complete into H.
		{"if:P()", "F()"}, {"if:P()", "G()"},
		{"F()", "H()"}, {"G()", "H()"},
	}
	for _, we := range wantEdges {
		if !edge(we[0], we[1]) {
			t.Errorf("missing edge %s -> %s", we[0], we[1])
		}
	}
	if edge("D(1,1)", "E(1)") {
		t.Error("unexpected edge D(1,1) -> E(1): E must wait for K to exhaust")
	}

	// Branch labels on the diamond's out-edges.
	c := g.NodeByKey("if:P()")
	branches := map[string]string{}
	for _, e := range g.Edges {
		if e.From == c {
			branches[g.Nodes[e.To].Key()] = e.Branch
		}
	}
	if branches["F()"] != "T" || branches["G()"] != "F" {
		t.Errorf("diamond branches = %v", branches)
	}
}

func TestGraphDOT(t *testing.T) {
	p := compileFig1(t)
	g := BuildGraph(p)
	dot := g.DOT()
	for _, want := range []string{"digraph macrodataflow", "shape=diamond", "shape=circle", `label="T"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestGraphZeroTripTransparent(t *testing.T) {
	// A zero-trip structural loop between X and Z: edge X->Z directly.
	p := compile(t, func(b *loopir.B) {
		it := func(loopir.Env, loopir.IVec, int64) {}
		b.DoallLeaf("X", loopir.Const(1), it)
		b.Doall("Zero", loopir.Const(0), func(b *loopir.B) {
			b.DoallLeaf("Y", loopir.Const(1), it)
		})
		b.DoallLeaf("Z", loopir.Const(1), it)
	})
	g := BuildGraph(p)
	if g.NodeByKey("Y(1)") >= 0 {
		t.Error("zero-trip loop produced instance nodes")
	}
	x, z := g.NodeByKey("X()"), g.NodeByKey("Z()")
	found := false
	for _, e := range g.Edges {
		if e.From == x && e.To == z {
			found = true
		}
	}
	if !found {
		t.Error("missing pass-through edge X -> Z around the zero-trip loop")
	}
}

func TestGraphPredsSuccs(t *testing.T) {
	p := compileFig1(t)
	g := BuildGraph(p)
	h := g.NodeByKey("H()")
	preds := g.Preds(h)
	if len(preds) != 2 {
		t.Errorf("H has %d preds, want 2 (F and G)", len(preds))
	}
	a1 := g.NodeByKey("A(1)")
	if got := len(g.Succs(a1)); got != 2 {
		t.Errorf("A(1) has %d succs, want 2", got)
	}
}

func TestFormatInstrumented(t *testing.T) {
	p := compileFig1(t)
	out := p.FormatInstrumented()
	for _, want := range []string{
		"ENTER(A, level 0)",
		"SEARCH(i, ip, b, loc_indexes)",
		"{ip->index <= b; Fetch(j)&Increment}",
		"case D:",
		"last in K -> advance, re-enter C",
		"last in I -> BAR_COUNT",
		"{ip->pcount = 1; Decrement}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("instrumented listing missing %q:\n%s", want, out)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := compileFig1(t)
	s := p.String()
	if !strings.Contains(s, "8 innermost") || !strings.Contains(s, "entry A") {
		t.Errorf("String = %q", s)
	}
}
