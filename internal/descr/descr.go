// Package descr is the "compiler" of the scheme: it takes a standardized
// loop nest and emits the descriptor arrays the paper's run-time algorithms
// consume (Section II-D, Figs. 5 and 6):
//
//   - DEPTH(i): the number of loops enclosing innermost parallel loop i,
//   - BOUND(i): the bound of loop i (constant or expression),
//   - DESCRPT_i(j): per enclosing level j, the type (parallel/serial),
//     bound and identity of the enclosing loop, whether i is the last
//     innermost loop of that level (last), the successor loop at that
//     level (next), and the IF guards protecting i at that level
//     (conditnl / cond_exp / altern).
//
// # The virtual root level
//
// The paper's top-level sequencing ("loops at the same nesting level are
// executed in sequence") is represented uniformly by enclosing the whole
// program in a virtual serial loop with bound 1 at level 1. All real loops
// therefore sit at levels >= 2, and internal depth = paper depth + 1. When
// the EXIT walk climbs past level 1 the program is complete. Figure dumps
// subtract the root level to match the paper.
//
// # Guards
//
// The paper's DESCRPT record holds a single conditnl/cond_exp/altern
// triple. We generalize to an ordered list of guards per level so that
// several IF constructs nested at the same level are handled; a guard is
// recorded only for constructs on the TRUE branch of an IF (exactly the
// paper's conditnl convention — FALSE-branch loops are reached only
// through an altern pointer, never guarded by their own IF).
package descr

import (
	"fmt"

	"repro/internal/loopir"
)

// Guard is one IF-THEN-ELSE protecting a leaf's construct chain at some
// level. Cond is the paper's cond_exp; Altern is the number of the entry
// leaf of the FALSE branch, or 0 when the FALSE branch is empty.
type Guard struct {
	Label  string
	Cond   loopir.CondFn
	Altern int
}

// LevelDesc is the DESCRPT_i(j) record for one enclosing level.
type LevelDesc struct {
	// Parallel reports whether the enclosing loop at this level is a
	// parallel loop; otherwise it is serial (the virtual root is serial).
	Parallel bool
	// Bound is the enclosing loop's bound (evaluated with the indexes of
	// the loops enclosing it, i.e. levels 2..j-1).
	Bound loopir.Bound
	// LoopID is the unique node ID of the enclosing loop (0 for the
	// virtual root); it keys the BAR_COUNT table.
	LoopID int
	// LoopLabel names the enclosing loop for diagnostics.
	LoopLabel string
	// Last reports whether the leaf's construct chain is the final
	// construct within this loop's body (the paper's "last").
	Last bool
	// Next is the number of the entry leaf of the successor construct at
	// this level. For the last construct of a serial loop it wraps to the
	// entry leaf of the loop body's first construct (used when the serial
	// index advances); for the last construct of a parallel loop it is 0
	// (the barrier decides the successor at an outer level).
	Next int
	// Guards are the IF guards protecting the chain at this level,
	// outermost first.
	Guards []Guard
}

// LeafInfo describes one innermost parallel loop.
type LeafInfo struct {
	// Num is the paper's loop number, 1..M in program order.
	Num int
	// Node is the leaf loop node (Kind Doall or Doacross, with Iter set).
	Node *loopir.Node
	// Depth is the internal depth: number of enclosing loops including
	// the virtual root. The paper's DEPTH(i) is Depth-1.
	Depth int
	// Levels[j] for j in 1..Depth is the DESCRPT_i(j) record. Levels[0]
	// is unused.
	Levels []LevelDesc
}

// PaperDepth returns the paper's DEPTH(i) (excluding the virtual root).
func (l *LeafInfo) PaperDepth() int { return l.Depth - 1 }

// Program is a compiled nest: the descriptor arrays plus bookkeeping.
type Program struct {
	// Nest is the standardized nest the program was compiled from.
	Nest *loopir.Nest
	// M is the number of innermost parallel loops.
	M int
	// Entry is the number of the entry leaf of the first top-level
	// construct: the initial ENTER target.
	Entry  int
	leaves []*LeafInfo
	byNode map[*loopir.Node]int
}

// Leaf returns the LeafInfo for loop number num (1..M).
func (p *Program) Leaf(num int) *LeafInfo {
	if num < 1 || num > p.M {
		panic(fmt.Sprintf("descr: leaf number %d out of range [1,%d]", num, p.M))
	}
	return p.leaves[num-1]
}

// Leaves returns all leaves in numbering order.
func (p *Program) Leaves() []*LeafInfo { return p.leaves }

// NumOf returns the number of a leaf node, or 0 if nd is not a leaf of
// this program.
func (p *Program) NumOf(nd *loopir.Node) int { return p.byNode[nd] }

// container records where a node sits: in which sequence, at which index,
// owned by which construct (nil owner = the top-level sequence).
type container struct {
	seq    []*loopir.Node
	idx    int
	owner  *loopir.Node
	isElse bool // owner is an IF and the node is in its ELSE branch
}

// Compile builds the descriptor arrays for a standardized nest.
func Compile(nest *loopir.Nest) (*Program, error) {
	if !nest.Standardized {
		return nil, fmt.Errorf("descr: nest is not standardized")
	}
	if err := nest.Validate(); err != nil {
		return nil, fmt.Errorf("descr: invalid nest: %w", err)
	}
	p := &Program{Nest: nest, byNode: map[*loopir.Node]int{}}

	// Pass 1: number leaves in program order and record containment.
	ctnr := map[*loopir.Node]container{}
	var walk func(seq []*loopir.Node, owner *loopir.Node, isElse bool)
	walk = func(seq []*loopir.Node, owner *loopir.Node, isElse bool) {
		for i, nd := range seq {
			ctnr[nd] = container{seq: seq, idx: i, owner: owner, isElse: isElse}
			switch nd.Kind {
			case loopir.KindIf:
				walk(nd.Then, nd, false)
				walk(nd.Else, nd, true)
			case loopir.KindStmt:
				// unreachable in a standardized nest (Validate + Standardize)
			default:
				if nd.IsLeaf() {
					p.M++
					p.byNode[nd] = p.M
					p.leaves = append(p.leaves, &LeafInfo{Num: p.M, Node: nd})
				} else {
					walk(nd.Body, nd, false)
				}
			}
		}
	}
	walk(nest.Root, nil, false)
	if p.M == 0 {
		return nil, fmt.Errorf("descr: nest has no innermost parallel loops")
	}

	// Pass 2: per-leaf descriptors.
	for _, leaf := range p.leaves {
		if err := p.describe(leaf, ctnr); err != nil {
			return nil, err
		}
	}
	p.Entry = p.entryLeaf(nest.Root[0])
	return p, nil
}

// entryLeaf returns the number of the leftmost leaf of a construct: the
// leaf activated first when the construct is entered (IFs descend their
// THEN branch; guards recorded on that leaf dispatch to the FALSE branch).
func (p *Program) entryLeaf(nd *loopir.Node) int {
	for {
		if num, ok := p.byNode[nd]; ok {
			return num
		}
		switch nd.Kind {
		case loopir.KindIf:
			nd = nd.Then[0]
		default:
			nd = nd.Body[0]
		}
	}
}

// describe fills in Depth and Levels for one leaf by walking up the
// containment chain, one enclosing loop per level.
func (p *Program) describe(leaf *LeafInfo, ctnr map[*loopir.Node]container) error {
	// Collect enclosing loops, innermost first, ending at the virtual root.
	type levelCtx struct {
		loop *loopir.Node // nil = virtual root
		node *loopir.Node // the construct of leaf's chain directly within loop's body
	}
	var chain []levelCtx
	segStart := leaf.Node // where this level's guard/successor walk begins
	node := leaf.Node
	for {
		c, ok := ctnr[node]
		if !ok {
			return fmt.Errorf("descr: node %q has no container", node.Label)
		}
		if c.owner == nil {
			chain = append(chain, levelCtx{loop: nil, node: segStart})
			break
		}
		if c.owner.Kind == loopir.KindIf {
			node = c.owner
			continue
		}
		chain = append(chain, levelCtx{loop: c.owner, node: segStart})
		node = c.owner
		segStart = c.owner
	}
	leaf.Depth = len(chain)
	leaf.Levels = make([]LevelDesc, leaf.Depth+1)

	for i, lc := range chain {
		level := leaf.Depth - i // innermost first
		desc := LevelDesc{}
		if lc.loop == nil {
			desc.Parallel = false
			desc.Bound = loopir.Const(1)
			desc.LoopID = 0
			desc.LoopLabel = "<program>"
		} else {
			desc.Parallel = lc.loop.Kind.IsParallel()
			desc.Bound = lc.loop.Bound
			desc.LoopID = lc.loop.ID
			desc.LoopLabel = lc.loop.Label
		}

		// Walk from the chain construct up through enclosing IFs at this
		// level, collecting guards and finding the successor.
		cur := lc.node
		last := true
		next := 0
		var guards []Guard
		for {
			c := ctnr[cur]
			if next == 0 && c.idx < len(c.seq)-1 {
				last = false
				next = p.entryLeaf(c.seq[c.idx+1])
			}
			if c.owner != nil && c.owner.Kind == loopir.KindIf {
				if !c.isElse {
					g := Guard{Label: c.owner.Label, Cond: c.owner.Cond}
					if len(c.owner.Else) > 0 {
						g.Altern = p.entryLeaf(c.owner.Else[0])
					}
					guards = append([]Guard{g}, guards...) // outermost first
				}
				cur = c.owner
				continue
			}
			// Reached the loop body (or top-level) sequence.
			if last && !desc.Parallel {
				// Serial (or root) wrap-around: the successor when the
				// serial index advances is the body's first construct.
				next = p.entryLeaf(c.seq[0])
			}
			break
		}
		desc.Last = last
		desc.Next = next
		desc.Guards = guards
		leaf.Levels[level] = desc
	}
	return nil
}
