package descr

import (
	"fmt"
	"strings"
)

// FormatInstrumented renders the instrumented program: the paper's central
// idea is that "programs are instrumented to allow processors to schedule
// loop iterations among themselves" — this listing shows, in the paper's
// pseudocode style, the self-scheduling code each processor executes for
// this particular program (Algorithm 3 specialized with the program's
// descriptor contents). It is a documentation artifact: the executable
// form of the same logic lives in package core.
func (p *Program) FormatInstrumented() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* instrumented program: %d innermost parallel loops, entry %s */\n",
		p.M, p.Leaf(p.Entry).Node.Label)
	fmt.Fprintf(&sb, "proc[0]:  ENTER(%s, level 0)          /* activate initial instances */\n",
		p.Leaf(p.Entry).Node.Label)
	sb.WriteString("proc[*]:\n")
	sb.WriteString("start:    SEARCH(i, ip, b, loc_indexes)  /* leading-one on SW; adopt ICB: {pcount < b; Increment} */\n")
	sb.WriteString("fetch:    {ip->index <= b; Fetch(j)&Increment}\n")
	sb.WriteString("          if (failure) { {ip->pcount; Decrement}; goto start }\n")
	sb.WriteString("          if (j = b) DELETE(i, ip)\n")
	sb.WriteString("body:     switch (i) {\n")
	for _, l := range p.Leaves() {
		kind := "doall"
		if l.Node.Kind.IsParallel() && l.Node.Dist > 0 {
			kind = fmt.Sprintf("doacross(d=%d)", l.Node.Dist)
		}
		fmt.Fprintf(&sb, "            case %s: /* %s, DEPTH %d, BOUND %v */ body_%s(loc_indexes, j)\n",
			l.Node.Label, kind, l.PaperDepth(), l.Node.Bound, l.Node.Label)
	}
	sb.WriteString("          }\n")
	sb.WriteString("update:   {ip->icount; Fetch&add(1)}\n")
	sb.WriteString("          if (icount+1 = b) {          /* instance complete */\n")
	sb.WriteString("            lev = EXIT(i, loc_indexes) /* per-loop exit tables: */\n")
	for _, l := range p.Leaves() {
		fmt.Fprintf(&sb, "              /* %-6s:", l.Node.Label)
		var parts []string
		for lvl := l.Depth; lvl >= 1; lvl-- {
			d := l.Levels[lvl]
			at := d.LoopLabel
			switch {
			case !d.Last:
				parts = append(parts, fmt.Sprintf("in %s -> next %s", at, p.Leaf(d.Next).Node.Label))
			case d.Parallel:
				parts = append(parts, fmt.Sprintf("last in %s -> BAR_COUNT", at))
			case d.Next != 0 && lvl > 1:
				parts = append(parts, fmt.Sprintf("last in %s -> advance, re-enter %s", at, p.Leaf(d.Next).Node.Label))
			default:
				parts = append(parts, "last at top level -> program end")
			}
		}
		sb.WriteString(" " + strings.Join(parts, "; ") + " */\n")
	}
	sb.WriteString("            if (lev != 0) ENTER(DESCRPT_i(lev).next, lev)\n")
	sb.WriteString("            spin: {ip->pcount = 1; Decrement}; if (failure) goto spin\n")
	sb.WriteString("            release ICB; goto start\n")
	sb.WriteString("          }\n")
	sb.WriteString("          goto fetch\n")
	return sb.String()
}
