package descr

import (
	"fmt"
	"strings"
)

// FormatDepthBound renders the DEPTH and BOUND arrays in the style of the
// paper's Fig. 5 (depths exclude the virtual root level).
func (p *Program) FormatDepthBound() string {
	var sb strings.Builder
	sb.WriteString("loop  DEPTH  BOUND\n")
	for _, l := range p.leaves {
		fmt.Fprintf(&sb, "%-5s %5d  %v\n", l.Node.Label, l.PaperDepth(), l.Node.Bound)
	}
	return sb.String()
}

// FormatDescriptors renders the DESCRPT_i arrays in the style of the
// paper's Fig. 6: one block per innermost parallel loop, one row per real
// enclosing level (the virtual root is omitted to match the paper).
func (p *Program) FormatDescriptors() string {
	var sb strings.Builder
	for _, l := range p.leaves {
		fmt.Fprintf(&sb, "DESCRPT_%s (loop %d, depth %d):\n", l.Node.Label, l.Num, l.PaperDepth())
		if l.Depth < 2 {
			sb.WriteString("  (top level)")
			if gs := l.Levels[1].Guards; len(gs) > 0 {
				sb.WriteString(" conditnl=yes " + p.formatGuards(gs))
			}
			sb.WriteString("\n")
		}
		for lvl := 2; lvl <= l.Depth; lvl++ {
			d := l.Levels[lvl]
			kind := "serial  "
			if d.Parallel {
				kind = "parallel"
			}
			next := "-"
			if d.Next != 0 {
				next = p.Leaf(d.Next).Node.Label
			}
			cond := "no"
			if len(d.Guards) > 0 {
				cond = "yes " + p.formatGuards(d.Guards)
			}
			fmt.Fprintf(&sb, "  level %d: loop=%-10s %s last=%-5v bound=%-6v next=%-10s conditnl=%s\n",
				lvl-1, d.LoopLabel, kind, d.Last, d.Bound, next, cond)
		}
	}
	return sb.String()
}

func (p *Program) formatGuards(guards []Guard) string {
	var gs []string
	for _, g := range guards {
		alt := "(empty)"
		if g.Altern != 0 {
			alt = p.Leaf(g.Altern).Node.Label
		}
		gs = append(gs, fmt.Sprintf("%s->%s", g.Label, alt))
	}
	return strings.Join(gs, ",")
}

// String summarizes the program.
func (p *Program) String() string {
	return fmt.Sprintf("program: %d innermost parallel loops, entry %s",
		p.M, p.Leaf(p.Entry).Node.Label)
}
