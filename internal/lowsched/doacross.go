package lowsched

import (
	"fmt"

	"repro/internal/machine"
)

// Doacross enforces the cross-iteration dependence of one Doacross loop
// instance: iteration j's dependence sink may not execute until iteration
// j-dist's dependence source has posted. Each iteration has its own
// synchronization flag (its own shared-memory location), posted with
// {Store(1)} and awaited with a {flag = 1; Fetch} spin.
type Doacross struct {
	dist  int64
	flags []*machine.SyncVar
}

// NewDoacross returns dependence state for an instance with the given
// bound and dependence distance (>= 1).
func NewDoacross(bound, dist int64) *Doacross {
	if dist < 1 {
		panic(fmt.Sprintf("lowsched: doacross distance %d < 1", dist))
	}
	d := &Doacross{dist: dist, flags: make([]*machine.SyncVar, bound)}
	for i := range d.flags {
		d.flags[i] = machine.NewSyncVar("dep", 0)
	}
	return d
}

// ReuseDoacross recycles dependence state alongside a recycled ICB: when
// prev has exactly bound flags, every flag is reset to a fresh lifetime
// (machine.SyncVar.Reset, so identity-keyed engine state treats them as
// newly allocated) and prev is returned; otherwise fresh state is
// allocated. The caller must hold exclusive ownership of prev (the
// pcount release protocol has drained the instance that used it).
func ReuseDoacross(prev *Doacross, bound, dist int64) *Doacross {
	if prev == nil || int64(len(prev.flags)) != bound {
		return NewDoacross(bound, dist)
	}
	if dist < 1 {
		panic(fmt.Sprintf("lowsched: doacross distance %d < 1", dist))
	}
	prev.dist = dist
	for _, f := range prev.flags {
		f.Reset(0)
	}
	return prev
}

// Dist returns the dependence distance.
func (d *Doacross) Dist() int64 { return d.dist }

// SyncName marks the state as Doacross dependence machinery
// (pool.SyncState).
func (*Doacross) SyncName() string { return "doacross" }

// Await blocks processor pr until iteration j's dependence source
// (iteration j-dist) has posted. Iterations j <= dist have no predecessor
// and return immediately.
func (d *Doacross) Await(pr machine.Proc, j int64) {
	if j <= d.dist {
		return
	}
	flag := d.flags[j-d.dist-1]
	in := machine.Instr{Test: machine.TestEQ, TestVal: 1, Op: machine.OpFetch}
	for {
		if _, ok := flag.Exec(pr, in); ok {
			return
		}
		pr.Spin()
	}
}

// Post marks iteration j's dependence source as executed.
func (d *Doacross) Post(pr machine.Proc, j int64) {
	d.flags[j-1].Exec(pr, machine.Instr{Op: machine.OpStore, Operand: 1})
}

// Posted reports whether iteration j has posted (testing only).
func (d *Doacross) Posted(j int64) bool { return d.flags[j-1].Peek() == 1 }
