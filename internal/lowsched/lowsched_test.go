package lowsched

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/pool"
)

// tp is a minimal Proc for single-threaded scheme tests.
type tp struct {
	n        int
	accesses int64
	spins    int64
}

func (p *tp) ID() int       { return 0 }
func (p *tp) NumProcs() int { return p.n }
func (p *tp) Now() int64    { return 0 }
func (p *tp) Work(int64)    {}
func (p *tp) Idle(int64)    {}
func (p *tp) Access(*machine.SyncVar) {
	p.accesses++
}
func (p *tp) Spin() { p.spins++ }

func newICB(bound int64) *pool.ICB { return pool.NewICB(1, bound, loopir.IVec{}) }

// drain pulls every assignment from an instance sequentially and checks
// the fundamental partition properties:
//   - assignments are disjoint, contiguous, and cover 1..bound exactly,
//   - exactly one assignment has last=true, and it contains the bound.
func drain(t *testing.T, s Scheme, p machine.Proc, bound int64) []Assignment {
	t.Helper()
	pol := Bind(s, p.NumProcs())
	icb := newICB(bound)
	pol.Init(p, icb)
	return drainICB(t, pol, p, icb)
}

func drainICB(t *testing.T, pol Policy, p machine.Proc, icb *pool.ICB) []Assignment {
	t.Helper()
	bound := icb.Bound
	var out []Assignment
	lastSeen := 0
	next := int64(1)
	for {
		a, ok, last := pol.Next(p, icb)
		if !ok {
			break
		}
		if a.Lo != next {
			t.Fatalf("%s: assignment %v starts at %d, want %d", pol.Name(), a, a.Lo, next)
		}
		if a.Hi < a.Lo || a.Hi > bound {
			t.Fatalf("%s: assignment %v out of range (bound %d)", pol.Name(), a, bound)
		}
		if last {
			lastSeen++
			if a.Hi != bound {
				t.Fatalf("%s: last assignment %v does not contain bound %d", pol.Name(), a, bound)
			}
		}
		next = a.Hi + 1
		out = append(out, a)
	}
	if next != bound+1 {
		t.Fatalf("%s: covered 1..%d, want 1..%d", pol.Name(), next-1, bound)
	}
	if lastSeen != 1 {
		t.Fatalf("%s: saw %d last-flags, want exactly 1", pol.Name(), lastSeen)
	}
	// Subsequent calls keep failing.
	if _, ok, _ := pol.Next(p, icb); ok {
		t.Fatalf("%s: Next succeeded after exhaustion", pol.Name())
	}
	return out
}

func allSchemes() []Scheme {
	return []Scheme{
		SS{}, CSS{K: 1}, CSS{K: 4}, CSS{K: 100}, GSS{},
		TSS{}, TSS{First: 10, Last: 2}, FSC{},
		FAC2{}, AF{}, AF{CV: 100}, TFSS{}, TFSS{First: 12, Last: 2},
	}
}

func TestSchemesPartitionIterationSpace(t *testing.T) {
	for _, s := range allSchemes() {
		for _, bound := range []int64{1, 2, 3, 7, 64, 1000} {
			t.Run(fmt.Sprintf("%s/N=%d", s.Name(), bound), func(t *testing.T) {
				drain(t, s, &tp{n: 4}, bound)
			})
		}
	}
}

func TestSchemesQuickPartition(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		f := func(bound uint16, procs uint8) bool {
			b := int64(bound%2000) + 1
			p := &tp{n: int(procs%16) + 1}
			pol := Bind(s, p.NumProcs())
			icb := newICB(b)
			pol.Init(p, icb)
			next := int64(1)
			for {
				a, ok, _ := pol.Next(p, icb)
				if !ok {
					break
				}
				if a.Lo != next || a.Hi < a.Lo || a.Hi > b {
					return false
				}
				next = a.Hi + 1
			}
			return next == b+1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

// TestCalculatorPurity pins the ChunkCalculator contract: Chunk is a pure
// function (same state in, same chunk and successor state out) and the
// advertised fixed stride matches the state advance.
func TestCalculatorPurity(t *testing.T) {
	for _, s := range allSchemes() {
		cs, ok := s.(CalcScheme)
		if !ok {
			t.Fatalf("%s: cursor scheme does not implement CalcScheme", s.Name())
		}
		c := cs.Calculator(4)
		const bound = 100
		stride, fixed := c.Stride()
		state := int64(1)
		for {
			a1, n1, ok1 := c.Chunk(state, bound)
			a2, n2, ok2 := c.Chunk(state, bound)
			if a1 != a2 || n1 != n2 || ok1 != ok2 {
				t.Fatalf("%s: Chunk(%d, %d) is not deterministic", c.Name(), state, bound)
			}
			if !ok1 {
				break
			}
			if fixed && n1 != state+stride {
				t.Fatalf("%s: fixed stride %d but state moved %d -> %d", c.Name(), stride, state, n1)
			}
			state = n1
		}
	}
}

// TestRecycledICBLeaksNoProgress is the scheme/state-drift regression: a
// recycled ICB (pool.Reinit keeps the typed Sched/Sync attachments) must
// not leak claim progress from its previous instance. Partially drain an
// instance, recycle the block, re-Init — the new instance must cover its
// whole iteration space again, for every scheme including the
// pre-assignment policies with typed per-processor state.
func TestRecycledICBLeaksNoProgress(t *testing.T) {
	const np = 4
	// Drains across all processor IDs (static schemes pre-assign work per
	// processor) and checks exact coverage of 1..bound.
	cover := func(t *testing.T, pol Policy, icb *pool.ICB) {
		t.Helper()
		seen := map[int64]int{}
		lasts := 0
		for id := 0; id < np; id++ {
			pr := &procWithID{tp: tp{n: np}, id: id}
			for {
				a, ok, last := pol.Next(pr, icb)
				if !ok {
					break
				}
				for j := a.Lo; j <= a.Hi; j++ {
					seen[j]++
				}
				if last {
					lasts++
				}
			}
		}
		for j := int64(1); j <= icb.Bound; j++ {
			if seen[j] != 1 {
				t.Fatalf("%s: iteration %d executed %d times after recycle", pol.Name(), j, seen[j])
			}
		}
		if int64(len(seen)) != icb.Bound || lasts != 1 {
			t.Fatalf("%s: covered %d iterations (want %d), %d last-flags (want 1)",
				pol.Name(), len(seen), icb.Bound, lasts)
		}
	}
	schemes := append(allSchemes(), StaticBlock{}, StaticCyclic{}, AFS{})
	for _, s := range schemes {
		t.Run(s.Name(), func(t *testing.T) {
			pol := Bind(s, np)
			icb := newICB(64)
			pol.Init(&tp{n: np}, icb)
			// Claim some progress, then abandon the instance.
			for id := 0; id < np; id++ {
				pol.Next(&procWithID{tp: tp{n: np}, id: id}, icb)
			}
			// Recycle for a smaller and a larger instance: both must be
			// fully covered from scratch.
			for _, bound := range []int64{5, 200} {
				icb.Reinit(1, bound, loopir.IVec{})
				pol.Init(&tp{n: np}, icb)
				cover(t, pol, icb)
			}
		})
	}
}

// TestReuseDoacrossResets pins the Doacross recycling path: matching
// shapes reset the existing flags in place (fresh SyncVar lifetimes),
// mismatched shapes allocate fresh state.
func TestReuseDoacrossResets(t *testing.T) {
	p := &tp{n: 2}
	d := NewDoacross(8, 1)
	d.Post(p, 3)
	gen := d.flags[0].Generation()

	if got := ReuseDoacross(d, 8, 2); got != d {
		t.Fatal("ReuseDoacross did not reuse matching-shape state")
	}
	if d.Dist() != 2 {
		t.Errorf("Dist after reuse = %d, want 2", d.Dist())
	}
	if d.Posted(3) {
		t.Error("posted flag survived recycling")
	}
	if g := d.flags[0].Generation(); g != gen+1 {
		t.Errorf("flag generation %d after reuse, want %d", g, gen+1)
	}
	if got := ReuseDoacross(d, 16, 1); got == d {
		t.Error("ReuseDoacross reused state across a bound change")
	}
	if got := ReuseDoacross(nil, 4, 1); got == nil || len(got.flags) != 4 {
		t.Error("ReuseDoacross(nil) did not allocate fresh state")
	}
}

func TestSSOneAtATime(t *testing.T) {
	for _, a := range drain(t, SS{}, &tp{n: 4}, 50) {
		if a.Size() != 1 {
			t.Fatalf("SS assignment %v has size %d", a, a.Size())
		}
	}
}

func TestCSSChunkSizes(t *testing.T) {
	as := drain(t, CSS{K: 7}, &tp{n: 4}, 50)
	for i, a := range as {
		want := int64(7)
		if i == len(as)-1 {
			want = 50 % 7 // 1
		}
		if a.Size() != want {
			t.Errorf("CSS chunk %d = %v (size %d), want %d", i, a, a.Size(), want)
		}
	}
}

func TestGSSChunkSequence(t *testing.T) {
	// Classic GSS example: N=100, P=4 gives 25, 19, 14, 11, 8, 6, 5, 3,
	// 3, 2, 1, 1, 1, 1 (ceil(remaining/P) each time).
	as := drain(t, GSS{}, &tp{n: 4}, 100)
	var sizes []int64
	for _, a := range as {
		sizes = append(sizes, a.Size())
	}
	want := "[25 19 14 11 8 6 5 3 3 2 1 1 1 1]"
	if fmt.Sprint(sizes) != want {
		t.Errorf("GSS sizes = %v, want %v", sizes, want)
	}
}

func TestGSSNonIncreasing(t *testing.T) {
	as := drain(t, GSS{}, &tp{n: 7}, 1000)
	for i := 1; i < len(as); i++ {
		if as[i].Size() > as[i-1].Size() {
			t.Fatalf("GSS chunk %d (%d) larger than previous (%d)",
				i, as[i].Size(), as[i-1].Size())
		}
	}
}

func TestTSSLinearDecrease(t *testing.T) {
	as := drain(t, TSS{First: 12, Last: 2}, &tp{n: 4}, 100)
	if as[0].Size() != 12 {
		t.Errorf("TSS first chunk = %d, want 12", as[0].Size())
	}
	for i := 1; i < len(as)-1; i++ { // final chunk may be a clamp remnant
		if as[i].Size() > as[i-1].Size() {
			t.Errorf("TSS chunk %d (%d) larger than previous (%d)",
				i, as[i].Size(), as[i-1].Size())
		}
		if as[i].Size() < 2 {
			t.Errorf("TSS chunk %d (%d) below Last=2", i, as[i].Size())
		}
	}
}

func TestTSSDefaults(t *testing.T) {
	// Default first chunk = ceil(N/(2P)) = 1000/8 = 125.
	as := drain(t, TSS{}, &tp{n: 4}, 1000)
	if as[0].Size() != 125 {
		t.Errorf("TSS default first chunk = %d, want 125", as[0].Size())
	}
}

func TestFSCRounds(t *testing.T) {
	// N=64, P=4: round 1 chunk = ceil(64/8) = 8, four chunks of 8 (32
	// left); round 2 chunk = ceil(32/8) = 4 (16 left); round 3 chunk = 2
	// (8 left); rounds 4 and 5 chunk = 1.
	as := drain(t, FSC{}, &tp{n: 4}, 64)
	var sizes []int64
	for _, a := range as {
		sizes = append(sizes, a.Size())
	}
	want := "[8 8 8 8 4 4 4 4 2 2 2 2 1 1 1 1 1 1 1 1]"
	if fmt.Sprint(sizes) != want {
		t.Errorf("FSC sizes = %v, want %v", sizes, want)
	}
}

// TestConcurrentCoverage verifies on the real machine that P processors
// pulling from one instance cover every iteration exactly once.
func TestConcurrentCoverage(t *testing.T) {
	const bound = 5000
	for _, s := range allSchemes() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			eng := machine.NewReal(machine.RealConfig{P: 8})
			pol := Bind(s, 8)
			icb := newICB(bound)
			pol.Init(&tp{n: 8}, icb)
			seen := make([]int32, bound+1)
			var mu sync.Mutex
			lastCount := 0
			eng.Run(func(pr machine.Proc) {
				for {
					a, ok, last := pol.Next(pr, icb)
					if !ok {
						return
					}
					for j := a.Lo; j <= a.Hi; j++ {
						mu.Lock()
						seen[j]++
						mu.Unlock()
					}
					if last {
						mu.Lock()
						lastCount++
						mu.Unlock()
					}
				}
			})
			for j := int64(1); j <= bound; j++ {
				if seen[j] != 1 {
					t.Fatalf("%s: iteration %d executed %d times", s.Name(), j, seen[j])
				}
			}
			if lastCount != 1 {
				t.Fatalf("%s: %d last-flags, want 1", s.Name(), lastCount)
			}
		})
	}
}

func TestDoacrossAwaitPost(t *testing.T) {
	p := &tp{n: 2}
	d := NewDoacross(10, 2)
	if d.Dist() != 2 {
		t.Errorf("Dist = %d", d.Dist())
	}
	// Iterations 1, 2 have no predecessor: Await returns immediately.
	d.Await(p, 1)
	d.Await(p, 2)
	if p.spins != 0 {
		t.Errorf("Await on dependence-free iterations spun %d times", p.spins)
	}
	d.Post(p, 1)
	if !d.Posted(1) || d.Posted(2) {
		t.Error("Posted flags wrong after Post(1)")
	}
	d.Await(p, 3) // 3-2=1 posted: immediate
	if p.spins != 0 {
		t.Error("Await(3) spun although iteration 1 posted")
	}
}

func TestDoacrossPipelineConcurrent(t *testing.T) {
	// Iterations executed by P processors; each iteration awaits its
	// predecessor, appends to a log, posts. The log must be in order for
	// dist=1.
	const bound = 200
	eng := machine.NewReal(machine.RealConfig{P: 4})
	d := NewDoacross(bound, 1)
	icb := newICB(bound)
	pol := Bind(SS{}, 4)
	pol.Init(&tp{n: 4}, icb)
	var mu sync.Mutex
	var order []int64
	eng.Run(func(pr machine.Proc) {
		for {
			a, ok, _ := pol.Next(pr, icb)
			if !ok {
				return
			}
			d.Await(pr, a.Lo)
			mu.Lock()
			order = append(order, a.Lo)
			mu.Unlock()
			d.Post(pr, a.Lo)
		}
	})
	if len(order) != bound {
		t.Fatalf("executed %d iterations, want %d", len(order), bound)
	}
	for i, j := range order {
		if j != int64(i+1) {
			t.Fatalf("order[%d] = %d: dist-1 doacross must serialize in order", i, j)
		}
	}
}

func TestDoacrossBadDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDoacross(_, 0) did not panic")
		}
	}()
	NewDoacross(5, 0)
}

func TestParse(t *testing.T) {
	good := map[string]string{
		"ss":        "SS",
		"css:4":     "CSS(4)",
		"CSS:16":    "CSS(16)",
		"gss":       "GSS",
		"tss":       "TSS",
		"tss:12:2":  "TSS(12,2)",
		"fsc":       "FSC",
		"factoring": "FSC",
		" gss ":     "GSS",
		"affinity":  "AFS",
		"fac2":      "FAC2",
		"af":        "AF",
		"af:50":     "AF(50%)",
		"tfss":      "TFSS",
		"tfss:12:2": "TFSS(12,2)",
	}
	for spec, name := range good {
		s, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, s.Name(), name)
		}
	}
	bad := []string{"", "css", "css:0", "css:x", "gss:3", "tss:5", "tss:1:2", "bogus", "ss:1", "fsc:2",
		"af:-1", "tfss:1:2", "tfss:5", "fac2:3"}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad spec did not panic")
		}
	}()
	MustParse("nope")
}

func TestCSSBindValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bind(CSS{K:0}) did not panic")
		}
	}()
	Bind(CSS{}, 1)
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{Lo: 3, Hi: 7}
	if a.Size() != 5 || a.String() != "[3,7]" {
		t.Errorf("helpers: size=%d str=%s", a.Size(), a)
	}
}

func BenchmarkNextSS(b *testing.B)  { benchNext(b, SS{}) }
func BenchmarkNextCSS(b *testing.B) { benchNext(b, CSS{K: 8}) }
func BenchmarkNextGSS(b *testing.B) { benchNext(b, GSS{}) }
func BenchmarkNextTSS(b *testing.B) { benchNext(b, TSS{}) }
func BenchmarkNextFSC(b *testing.B) { benchNext(b, FSC{}) }

func benchNext(b *testing.B, s Scheme) {
	// Chunked schemes consume many iterations per call; refill the
	// instance (untimed) whenever it runs dry so every benchmark
	// iteration measures one Next call.
	const bound = 1 << 20
	p := &tp{n: 8}
	pol := Bind(s, p.NumProcs())
	icb := newICB(bound)
	pol.Init(p, icb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := pol.Next(p, icb); !ok {
			b.StopTimer()
			icb = newICB(bound)
			pol.Init(p, icb)
			b.StartTimer()
		}
	}
}
