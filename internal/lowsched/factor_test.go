package lowsched

import (
	"fmt"
	"testing"
)

// sizes flattens a drained assignment list to chunk sizes for
// comparison against hand-computed references.
func sizes(as []Assignment) string {
	var out []int64
	for _, a := range as {
		out = append(out, a.Size())
	}
	return fmt.Sprint(out)
}

// TestFAC2Sequence pins FAC2 against the hand-computed reference for
// N=64, P=4: every claim takes ceil(remaining/8), so the sequence
// tapers inside each "round" (unlike FSC's equal rounds) and ends with
// eight unit chunks.
func TestFAC2Sequence(t *testing.T) {
	as := drain(t, FAC2{}, &tp{n: 4}, 64)
	want := "[8 7 7 6 5 4 4 3 3 3 2 2 2 1 1 1 1 1 1 1 1]"
	if got := sizes(as); got != want {
		t.Errorf("FAC2 sizes = %v, want %v", got, want)
	}
}

// TestAFSequences pins the adaptive-factoring divisor arithmetic: with
// CV=0 AF must equal FAC2 chunk for chunk; with CV=100% the divisor
// doubles to 4P, i.e. ceil(remaining/16) for P=4.
func TestAFSequences(t *testing.T) {
	fac2 := drain(t, FAC2{}, &tp{n: 4}, 64)
	af0 := drain(t, AF{}, &tp{n: 4}, 64)
	if sizes(af0) != sizes(fac2) {
		t.Errorf("AF(0) sizes = %v, want FAC2's %v", sizes(af0), sizes(fac2))
	}
	as := drain(t, AF{CV: 100}, &tp{n: 4}, 64)
	want := "[4 4 4 4 3 3 3 3 3 3 2 2 2 2 2 2 2 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]"
	if got := sizes(as); got != want {
		t.Errorf("AF(100%%) sizes = %v, want %v", got, want)
	}
}

// TestTFSSSequenceDefaults pins trapezoid factoring with the classical
// defaults for N=100, P=4: f = ceil(100/8) = 13, C = ceil(200/14) = 15
// trapezoid chunks in R = 4 rounds, per-round decrement (13-1)/3 = 4 —
// four chunks each of 13 and 9, then the tail clamped at the bound.
func TestTFSSSequenceDefaults(t *testing.T) {
	as := drain(t, TFSS{}, &tp{n: 4}, 100)
	want := "[13 13 13 13 9 9 9 9 5 5 2]"
	if got := sizes(as); got != want {
		t.Errorf("TFSS sizes = %v, want %v", got, want)
	}
}

// TestTFSSSequenceExplicit pins the explicit-parameter path: F=12, L=2,
// N=100, P=4 gives R = 4 rounds with decrement 10/3, rounded per round.
func TestTFSSSequenceExplicit(t *testing.T) {
	as := drain(t, TFSS{First: 12, Last: 2}, &tp{n: 4}, 100)
	want := "[12 12 12 12 9 9 9 9 5 5 5 1]"
	if got := sizes(as); got != want {
		t.Errorf("TFSS(12,2) sizes = %v, want %v", got, want)
	}
}

// TestTFSSRoundsShareSize verifies the defining property against TSS:
// within one round of P claims the chunk size is constant (TSS would
// decrease it claim by claim), and sizes never increase across rounds.
func TestTFSSRoundsShareSize(t *testing.T) {
	const p = 8
	as := drain(t, TFSS{}, &tp{n: p}, 4096)
	prev := as[0].Size()
	for i := p; i+p <= len(as); i += p {
		round := as[i : i+p]
		for _, a := range round[1 : len(round)-1] { // tail chunk may clamp
			if a.Size() != round[0].Size() {
				t.Fatalf("round at chunk %d mixes sizes %d and %d",
					i, round[0].Size(), a.Size())
			}
		}
		if round[0].Size() > prev {
			t.Fatalf("round at chunk %d grew: %d after %d", i, round[0].Size(), prev)
		}
		prev = round[0].Size()
	}
}
