package lowsched

import "fmt"

// AF is a simplified adaptive factoring rule (after Banicescu & Liu's
// AF, which sizes chunks from the measured mean and variance of
// iteration times): chunk = ceil(remaining / (2P·(1 + CV/100))), where
// CV is the coefficient of variation of per-iteration cost in percent.
// With CV = 0 it degenerates to FAC2; the higher the measured
// variability, the smaller the chunks, trading claim overhead for
// rebalancing slack exactly as eq. (2)'s variance term dictates. The
// full AF recomputes the divisor from per-processor timings at run
// time; here the variability is a scheme parameter so the calculator
// stays pure — the adaptive "auto" policy closes the loop by re-binding
// AF with the CV it estimates from the obs spine.
type AF struct {
	// CV is the assumed coefficient of variation of iteration times, in
	// percent (>= 0; 0 behaves like FAC2).
	CV int64
}

// Name returns "AF" or "AF(cv%)".
func (a AF) Name() string {
	if a.CV == 0 {
		return "AF"
	}
	return fmt.Sprintf("AF(%d%%)", a.CV)
}

// Spec returns "af" or "af:CV".
func (a AF) Spec() string {
	if a.CV == 0 {
		return "af"
	}
	return fmt.Sprintf("af:%d", a.CV)
}

// Calculator validates the variability and binds the machine size.
func (a AF) Calculator(nprocs int) ChunkCalculator {
	if a.CV < 0 {
		panic(fmt.Sprintf("lowsched: AF variability %d%% < 0", a.CV))
	}
	return afCalc{name: a.Name(), p: int64(nprocs), cv: a.CV}
}

// afCalc: the cursor is the next unclaimed index; the chunk size
// depends on it, so claims go through the compare-and-store loop. The
// divisor 2P(1+CV/100) is kept in integer arithmetic — size =
// ceil(100·remaining / (2P·(100+CV))) — so the calculator is exact on
// every engine.
type afCalc struct {
	name string
	p    int64
	cv   int64
}

func (c afCalc) Name() string        { return c.name }
func (afCalc) Stride() (int64, bool) { return 0, false }
func (c afCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	if s > bound {
		return Assignment{}, s, false
	}
	div := 2 * c.p * (100 + c.cv)
	size := (100*(bound-s+1) + div - 1) / div
	if size < 1 {
		size = 1
	}
	return Assignment{Lo: s, Hi: s + size - 1}, s + size, true
}
