package lowsched

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pool"
)

// This file is the seam between chunk arithmetic and synchronization.
//
// A scheme used to be one opaque object that both decided chunk sizes and
// issued the test-and-op instructions realizing the claim, which meant
// every new scheme re-implemented the claim protocol and could smuggle
// per-instance state into hidden mutable fields. Following the
// distributed-chunk-calculation observation (Eleliemy & Ciorba) that chunk
// calculation factors into a pure state-in/state-out function, the split
// here is:
//
//   - ChunkCalculator: pure arithmetic. Given an immutable cursor state
//     word and the instance bound, produce the next assignment and the
//     successor state. No machine access, no side effects, no storage.
//   - calcPolicy: the one shared claim protocol. It realizes any
//     calculator against the ICB's Index synchronization variable — a
//     single fetch-and-add when the calculator advances by a fixed
//     stride, a fetch + compare-and-store retry loop otherwise.
//   - Policy: what the execution kernel actually drives. Cursor schemes
//     reach it through Bind's calcPolicy wrapper; pre-assignment schemes
//     (static, affinity) implement it directly.
//
// Adding a scheme is therefore one file defining a calculator — the claim
// protocol, the kernel and both engines are untouched.

// ChunkCalculator is the pure chunk-size arithmetic of a self-scheduling
// scheme: a function from (cursor state, bound) to (assignment, next
// state). Implementations must be pure — deterministic, free of side
// effects and of machine access — so the same calculator drives every
// engine identically and can be unit-tested as plain arithmetic.
//
// The cursor state is an int64 whose encoding belongs to the calculator
// (a plain next-index for SS/CSS/GSS, a packed word for TSS/FSC). State 1
// must encode "nothing claimed yet": the cursor lives in the ICB's Index
// variable, whose initial value is 1.
type ChunkCalculator interface {
	// Name identifies the calculator, e.g. "GSS" or "CSS(4)".
	Name() string
	// Stride returns (k, true) when the calculator always advances the
	// cursor by the fixed stride k regardless of state (SS: 1, CSS: K).
	// The claim protocol then uses a single indivisible fetch-and-add
	// instead of a compare-and-store loop.
	Stride() (k int64, fixed bool)
	// Chunk maps cursor state s to the assignment it denotes and the
	// successor state. ok is false when s encodes an exhausted instance.
	// For fixed-stride calculators Chunk must agree with Stride:
	// next == s + k whenever ok.
	Chunk(s, bound int64) (a Assignment, next int64, ok bool)
}

// BoundValidator is an optional ChunkCalculator extension: calculators
// with packed-state or parameter constraints validate the instance bound
// at activation and panic on violation (a configuration error, not a
// runtime condition).
type BoundValidator interface {
	ValidateBound(bound int64)
}

// CalcScheme is a Scheme realized by a pure chunk calculator. Calculator
// binds the scheme's immutable parameters and the machine size once per
// run; the result must not retain mutable state.
type CalcScheme interface {
	Scheme
	Calculator(nprocs int) ChunkCalculator
}

// Policy is the claim-side realization of a scheme the execution kernel
// drives: per-instance initialization at activation and the indivisible
// claim of the next assignment. Implementations must be safe for
// concurrent use by multiple processors on multiple instances; all
// per-instance state lives on the ICB (the Index variable or the typed
// Sched attachment).
type Policy interface {
	// Name identifies the policy, e.g. "GSS" or "static-block".
	Name() string
	// Init prepares per-instance state. It is called exactly once per
	// instance (by the activating processor pr), after the ICB is created
	// or recycled and before it becomes visible to other processors.
	Init(pr machine.Proc, icb *pool.ICB)
	// Next assigns the next chunk of iterations of icb's instance to the
	// calling processor. ok reports whether any iterations remained; last
	// reports that the assignment contains the instance's final iteration
	// (its receiver must DELETE the ICB from the task pool, Algorithm 3).
	Next(pr machine.Proc, icb *pool.ICB) (a Assignment, ok, last bool)
}

// Bind resolves a Scheme into the Policy the kernel drives, fixing the
// machine size. It is called once per run (not per instance or claim), so
// the hot claim path pays no construction or conversion cost.
func Bind(s Scheme, nprocs int) Policy {
	if nprocs < 1 {
		panic(fmt.Sprintf("lowsched: bind with %d processors", nprocs))
	}
	switch sc := s.(type) {
	case CalcScheme:
		c := sc.Calculator(nprocs)
		k, fixed := c.Stride()
		if fixed && k < 1 {
			panic(fmt.Sprintf("lowsched: calculator %s has fixed stride %d < 1", c.Name(), k))
		}
		return calcPolicy{calc: c, stride: k, fixed: fixed}
	case PolicyScheme:
		return sc.NewPolicy(nprocs)
	case Policy:
		return sc
	}
	panic(fmt.Sprintf("lowsched: scheme %s implements none of CalcScheme, PolicyScheme, Policy", s.Name()))
}

// calcPolicy is the shared claim protocol: it realizes a pure calculator
// against the ICB's Index variable with the paper's test-and-op
// instructions. All cursor state lives in Index (initial value 1), so a
// recycled ICB is reset by Index.Reset alone and cannot leak chunk
// progress between instances.
type calcPolicy struct {
	calc   ChunkCalculator
	stride int64
	fixed  bool
}

// Name returns the calculator's name.
func (c calcPolicy) Name() string { return c.calc.Name() }

// Init validates the bound when the calculator requires it; the cursor
// itself needs no initialization (Index starts at state 1).
func (c calcPolicy) Init(pr machine.Proc, icb *pool.ICB) {
	if v, ok := c.calc.(BoundValidator); ok {
		v.ValidateBound(icb.Bound)
	}
}

// Next claims the next assignment. Fixed-stride calculators use the
// paper's single indivisible {index <= bound; Fetch&add(k)}; state-
// dependent calculators use a fetch + compare-and-store retry loop (the
// conditional-store realization of the read-modify-write they require —
// the extra traffic is part of such schemes' measured overhead).
func (c calcPolicy) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	if c.fixed {
		j, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestLE, TestVal: icb.Bound, Op: machine.OpFetchAdd, Operand: c.stride,
		})
		if !ok {
			return Assignment{}, false, false
		}
		a, _, _ := c.calc.Chunk(j, icb.Bound)
		return a, true, a.Hi == icb.Bound
	}
	for {
		s := icb.Index.Fetch(pr)
		a, next, ok := c.calc.Chunk(s, icb.Bound)
		if !ok {
			return Assignment{}, false, false
		}
		if _, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestEQ, TestVal: s, Op: machine.OpStore, Operand: next,
		}); ok {
			return a, true, a.Hi == icb.Bound
		}
		pr.Spin() // lost the race; recompute from the new state
	}
}
