package lowsched

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pool"
)

// This file is the seam between chunk arithmetic and synchronization.
//
// A scheme used to be one opaque object that both decided chunk sizes and
// issued the test-and-op instructions realizing the claim, which meant
// every new scheme re-implemented the claim protocol and could smuggle
// per-instance state into hidden mutable fields. Following the
// distributed-chunk-calculation observation (Eleliemy & Ciorba) that chunk
// calculation factors into a pure state-in/state-out function, the split
// here is:
//
//   - ChunkCalculator: pure arithmetic. Given an immutable cursor state
//     word and the instance bound, produce the next assignment and the
//     successor state. No machine access, no side effects, no storage.
//   - calcPolicy: the one shared claim protocol. It realizes any
//     calculator against the ICB's Index synchronization variable — a
//     single fetch-and-add when the calculator advances by a fixed
//     stride, a fetch + compare-and-store retry loop otherwise.
//   - Policy: what the execution kernel actually drives. Cursor schemes
//     reach it through Bind's calcPolicy wrapper; pre-assignment schemes
//     (static, affinity) implement it directly.
//
// Adding a scheme is therefore one file defining a calculator — the claim
// protocol, the kernel and both engines are untouched.

// ChunkCalculator is the pure chunk-size arithmetic of a self-scheduling
// scheme: a function from (cursor state, bound) to (assignment, next
// state). Implementations must be pure — deterministic, free of side
// effects and of machine access — so the same calculator drives every
// engine identically and can be unit-tested as plain arithmetic.
//
// The cursor state is an int64 whose encoding belongs to the calculator
// (a plain next-index for SS/CSS/GSS, a packed word for TSS/FSC). State 1
// must encode "nothing claimed yet": the cursor lives in the ICB's Index
// variable, whose initial value is 1.
type ChunkCalculator interface {
	// Name identifies the calculator, e.g. "GSS" or "CSS(4)".
	Name() string
	// Stride returns (k, true) when the calculator always advances the
	// cursor by the fixed stride k regardless of state (SS: 1, CSS: K).
	// The claim protocol then uses a single indivisible fetch-and-add
	// instead of a compare-and-store loop.
	Stride() (k int64, fixed bool)
	// Chunk maps cursor state s to the assignment it denotes and the
	// successor state. ok is false when s encodes an exhausted instance.
	// For fixed-stride calculators Chunk must agree with Stride:
	// next == s + k whenever ok.
	Chunk(s, bound int64) (a Assignment, next int64, ok bool)
}

// BoundValidator is an optional ChunkCalculator extension: calculators
// with packed-state or parameter constraints validate the instance bound
// at activation and panic on violation (a configuration error, not a
// runtime condition).
type BoundValidator interface {
	ValidateBound(bound int64)
}

// CalcScheme is a Scheme realized by a pure chunk calculator. Calculator
// binds the scheme's immutable parameters and the machine size once per
// run; the result must not retain mutable state.
type CalcScheme interface {
	Scheme
	Calculator(nprocs int) ChunkCalculator
}

// Policy is the claim-side realization of a scheme the execution kernel
// drives: per-instance initialization at activation and the indivisible
// claim of the next assignment. Implementations must be safe for
// concurrent use by multiple processors on multiple instances; all
// per-instance state lives on the ICB (the Index variable or the typed
// Sched attachment).
type Policy interface {
	// Name identifies the policy, e.g. "GSS" or "static-block".
	Name() string
	// Init prepares per-instance state. It is called exactly once per
	// instance (by the activating processor pr), after the ICB is created
	// or recycled and before it becomes visible to other processors.
	Init(pr machine.Proc, icb *pool.ICB)
	// Next assigns the next chunk of iterations of icb's instance to the
	// calling processor. ok reports whether any iterations remained; last
	// reports that the assignment contains the instance's final iteration
	// (its receiver must DELETE the ICB from the task pool, Algorithm 3).
	Next(pr machine.Proc, icb *pool.ICB) (a Assignment, ok, last bool)
}

// Lease is a claimed run of up to batch successive chunks, acquired with
// one synchronization operation (Leaser.Lease) and sliced locally by the
// holding worker: Slice re-derives each chunk from the pure calculator
// with no machine access, so the per-chunk claim traffic of the classic
// protocol is paid once per lease. This is the distributed-chunk-
// calculation idea (Eleliemy & Ciorba) applied node-locally — and the
// seam a future distributed pool's remote claims build on (a remote
// claim is just a large lease).
type Lease struct {
	calc   ChunkCalculator
	s      int64 // cursor of the next unconsumed slice
	bound  int64
	n      int   // slices remaining
	lo, hi int64 // iteration range covered by the whole lease
}

// Len returns the number of chunks the lease covered at claim time.
func (l *Lease) Len() int { return l.n }

// Lo returns the first iteration covered by the lease.
func (l *Lease) Lo() int64 { return l.lo }

// Hi returns the last iteration covered by the lease.
func (l *Lease) Hi() int64 { return l.hi }

// Slice yields the lease's next chunk, advancing the local cursor. ok is
// false when the lease is consumed. Slicing is pure local arithmetic.
func (l *Lease) Slice() (Assignment, bool) {
	if l.n <= 0 {
		return Assignment{}, false
	}
	a, next, ok := l.calc.Chunk(l.s, l.bound)
	if !ok {
		l.n = 0
		return Assignment{}, false
	}
	l.s = next
	l.n--
	return a, true
}

// Remaining returns the unconsumed tail of the lease as one contiguous
// range, without advancing the cursor; ok is false when the lease is
// consumed. A checkpointing host records this as the leased-but-
// unexecuted remainder.
func (l *Lease) Remaining() (Assignment, bool) {
	if l.n <= 0 {
		return Assignment{}, false
	}
	a, _, ok := l.calc.Chunk(l.s, l.bound)
	if !ok {
		return Assignment{}, false
	}
	return Assignment{Lo: a.Lo, Hi: l.hi}, true
}

// Leaser is the batched-claiming extension of Policy: one
// synchronization operation acquires up to batch successive chunks. ok
// and last mean what they do for Policy.Next, applied to the whole
// lease; a true last obliges the caller to DELETE the ICB, exactly as
// for a final chunk. Implementations must guarantee that a lease with
// batch 1 issues the same instruction sequence as Policy.Next — batching
// off must be bit-identical to the classic protocol.
type Leaser interface {
	Lease(pr machine.Proc, icb *pool.ICB, batch int) (l Lease, ok, last bool)
}

// BatchBinder is an optional Policy extension: policies that model claim
// overhead (the adaptive fitter) are told the run's claim batch factor
// once at bind time, before any worker starts.
type BatchBinder interface {
	BindBatch(batch int)
}

// Bind resolves a Scheme into the Policy the kernel drives, fixing the
// machine size. It is called once per run (not per instance or claim), so
// the hot claim path pays no construction or conversion cost.
func Bind(s Scheme, nprocs int) Policy {
	if nprocs < 1 {
		panic(fmt.Sprintf("lowsched: bind with %d processors", nprocs))
	}
	switch sc := s.(type) {
	case CalcScheme:
		c := sc.Calculator(nprocs)
		k, fixed := c.Stride()
		if fixed && k < 1 {
			panic(fmt.Sprintf("lowsched: calculator %s has fixed stride %d < 1", c.Name(), k))
		}
		return calcPolicy{calc: c, stride: k, fixed: fixed}
	case PolicyScheme:
		return sc.NewPolicy(nprocs)
	case Policy:
		return sc
	}
	panic(fmt.Sprintf("lowsched: scheme %s implements none of CalcScheme, PolicyScheme, Policy", s.Name()))
}

// calcPolicy is the shared claim protocol: it realizes a pure calculator
// against the ICB's Index variable with the paper's test-and-op
// instructions. All cursor state lives in Index (initial value 1), so a
// recycled ICB is reset by Index.Reset alone and cannot leak chunk
// progress between instances.
type calcPolicy struct {
	calc   ChunkCalculator
	stride int64
	fixed  bool
}

// Name returns the calculator's name.
func (c calcPolicy) Name() string { return c.calc.Name() }

// Init validates the bound when the calculator requires it; the cursor
// itself needs no initialization (Index starts at state 1).
func (c calcPolicy) Init(pr machine.Proc, icb *pool.ICB) {
	if v, ok := c.calc.(BoundValidator); ok {
		v.ValidateBound(icb.Bound)
	}
}

// Next claims the next assignment. Fixed-stride calculators use the
// paper's single indivisible {index <= bound; Fetch&add(k)}; state-
// dependent calculators use a fetch + compare-and-store retry loop (the
// conditional-store realization of the read-modify-write they require —
// the extra traffic is part of such schemes' measured overhead).
func (c calcPolicy) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	if c.fixed {
		j, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestLE, TestVal: icb.Bound, Op: machine.OpFetchAdd, Operand: c.stride,
		})
		if !ok {
			return Assignment{}, false, false
		}
		a, _, _ := c.calc.Chunk(j, icb.Bound)
		return a, true, a.Hi == icb.Bound
	}
	for {
		s := icb.Index.Fetch(pr)
		a, next, ok := c.calc.Chunk(s, icb.Bound)
		if !ok {
			return Assignment{}, false, false
		}
		if _, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestEQ, TestVal: s, Op: machine.OpStore, Operand: next,
		}); ok {
			return a, true, a.Hi == icb.Bound
		}
		pr.Spin() // lost the race; recompute from the new state
	}
}

// Lease implements Leaser: claim up to batch successive chunks with the
// same one-operation protocols Next uses. Fixed-stride calculators
// advance the cursor by batch strides in a single indivisible
// {index <= bound; Fetch&add(k*batch)} — with batch 1 this is exactly
// Next's instruction. State-dependent calculators apply Chunk batch
// times locally (pure arithmetic, no machine access) and publish the
// final cursor with one compare-and-store, retrying from the new state
// on a lost race — again exactly Next's traffic at batch 1.
func (c calcPolicy) Lease(pr machine.Proc, icb *pool.ICB, batch int) (Lease, bool, bool) {
	if batch < 1 {
		batch = 1
	}
	if c.fixed {
		add := c.stride * int64(batch)
		j, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestLE, TestVal: icb.Bound, Op: machine.OpFetchAdd, Operand: add,
		})
		if !ok {
			return Lease{}, false, false
		}
		// Chunks whose cursor stayed within the bound are ours; the
		// overshoot past the bound leases nothing (later claimers fail
		// the test, exactly as after a final unit claim).
		n := int((min64(j+add-1, icb.Bound)-j)/c.stride) + 1
		first, _, _ := c.calc.Chunk(j, icb.Bound)
		lastA, _, _ := c.calc.Chunk(j+int64(n-1)*c.stride, icb.Bound)
		l := Lease{calc: c.calc, s: j, bound: icb.Bound, n: n, lo: first.Lo, hi: lastA.Hi}
		return l, true, l.hi == icb.Bound
	}
	for {
		s0 := icb.Index.Fetch(pr)
		s, n := s0, 0
		var lo, hi int64
		for n < batch {
			a, next, ok := c.calc.Chunk(s, icb.Bound)
			if !ok {
				break
			}
			if n == 0 {
				lo = a.Lo
			}
			hi = a.Hi
			s = next
			n++
		}
		if n == 0 {
			return Lease{}, false, false
		}
		if _, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestEQ, TestVal: s0, Op: machine.OpStore, Operand: s,
		}); ok {
			l := Lease{calc: c.calc, s: s0, bound: icb.Bound, n: n, lo: lo, hi: hi}
			return l, true, hi == icb.Bound
		}
		pr.Spin() // lost the race; recompute from the new state
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
