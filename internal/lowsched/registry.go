package lowsched

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// This file is the scheme registry: the single self-describing table of
// every low-level scheme the package (and its extensions) can construct.
//
// Before the registry there were three hand-maintained scheme tables —
// the Parse switch here, KnownSchemes() in the repro package, and the
// CLI help strings — which drifted independently (the PR 3 PoolNames bug
// was exactly this failure mode on the pool axis). Now a scheme is one
// Register call carrying its name, aliases, parameter spec, help line
// and constructor; Parse, KnownSchemes, and the CLI help text all derive
// from the same entry, so a scheme cannot be parseable but undocumented
// or vice versa.

// SchemeDef is one registry entry: everything the parser, the help text
// and the option validators need to know about a scheme.
type SchemeDef struct {
	// Name is the canonical specification name, lowercase, colon-free
	// (e.g. "css", "static-block").
	Name string
	// Aliases are alternative accepted names (e.g. "factoring" for fsc).
	Aliases []string
	// Params are the ordered parameter names of the ":"-separated
	// specification form, conventionally uppercase single letters or
	// short words (CSS: ["K"], TSS: ["F", "L"]).
	Params []string
	// ParamsOptional reports that the bare form (no parameters) is also
	// accepted, with scheme-chosen defaults (TSS: "tss" and "tss:F:L").
	ParamsOptional bool
	// Help is a one-line description for CLI help text.
	Help string
	// New constructs the scheme. args is empty for the bare form and has
	// len(Params) entries for the parameterized form; New validates
	// parameter ranges and returns a descriptive error on violation.
	New func(args []int64) (Scheme, error)
}

// Forms returns the accepted specification forms of this entry under one
// name: the bare name (when legal) and the parameterized form (when one
// exists), e.g. ["tss", "tss:F:L"] or ["css:K"].
func (d SchemeDef) forms(name string) []string {
	var out []string
	if len(d.Params) == 0 || d.ParamsOptional {
		out = append(out, name)
	}
	if len(d.Params) > 0 {
		out = append(out, name+":"+strings.Join(d.Params, ":"))
	}
	return out
}

// Forms returns the accepted specification forms under the canonical
// name (see Specs for alias forms too).
func (d SchemeDef) Forms() []string { return d.forms(d.Name) }

var (
	regMu    sync.RWMutex
	registry []SchemeDef
	regIndex = map[string]int{} // name and every alias -> registry slot
)

// Register adds a scheme to the registry. It is called from package
// init functions (the built-ins below; extension packages such as the
// adaptive policy register themselves the same way) and panics on an
// invalid or conflicting definition — a programming error, not input.
func Register(def SchemeDef) {
	if def.Name == "" || def.Name != strings.ToLower(def.Name) || strings.Contains(def.Name, ":") {
		panic(fmt.Sprintf("lowsched: invalid scheme name %q", def.Name))
	}
	if def.New == nil {
		panic(fmt.Sprintf("lowsched: scheme %q registered without a constructor", def.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, n := range append([]string{def.Name}, def.Aliases...) {
		if _, dup := regIndex[n]; dup {
			panic(fmt.Sprintf("lowsched: scheme name %q registered twice", n))
		}
	}
	registry = append(registry, def)
	for _, n := range append([]string{def.Name}, def.Aliases...) {
		regIndex[n] = len(registry) - 1
	}
}

// Defs returns the registered scheme definitions in registration order
// (built-ins first, extensions after), copied so callers cannot mutate
// the registry.
func Defs() []SchemeDef {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]SchemeDef, len(registry))
	copy(out, registry)
	return out
}

// Specs returns every accepted specification form of every registered
// scheme — canonical names first, alias forms after, uppercase letters
// standing for integer parameters. This is the single source of the
// user-facing scheme list (repro.KnownSchemes, CLI help).
func Specs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for _, d := range registry {
		out = append(out, d.Forms()...)
	}
	for _, d := range registry {
		for _, a := range d.Aliases {
			out = append(out, d.forms(a)...)
		}
	}
	return out
}

// lookup resolves a (lowercased) name or alias to its definition.
func lookup(name string) (SchemeDef, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := regIndex[name]
	if !ok {
		return SchemeDef{}, false
	}
	return registry[i], true
}

// Parse constructs a Scheme from a specification string, for CLI tools
// and experiment configuration. Accepted forms are exactly the
// registry's (see Specs): a registered name or alias, optionally
// followed by ":"-separated integer parameters, case-insensitive —
// e.g. "ss", "css:4", "tss:100:1", "factoring".
func Parse(spec string) (Scheme, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), ":")
	def, ok := lookup(parts[0])
	if !ok {
		return nil, fmt.Errorf("lowsched: unknown scheme %q", spec)
	}
	args := parts[1:]
	switch {
	case len(args) == 0:
		if len(def.Params) > 0 && !def.ParamsOptional {
			return nil, fmt.Errorf("lowsched: %s requires parameters (%s): %q",
				def.Name, strings.Join(def.Forms(), ", "), spec)
		}
		return def.New(nil)
	case len(args) != len(def.Params):
		return nil, fmt.Errorf("lowsched: %s takes %s: %q",
			def.Name, describeArity(def), spec)
	}
	vals := make([]int64, len(args))
	for i, a := range args {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lowsched: bad parameter %q in %q", a, spec)
		}
		vals[i] = v
	}
	return def.New(vals)
}

// describeArity renders a definition's accepted parameter counts for
// error messages ("no parameters", "zero or two parameters", ...).
func describeArity(def SchemeDef) string {
	counts := map[int]string{0: "zero", 1: "one", 2: "two", 3: "three"}
	n, ok := counts[len(def.Params)]
	if !ok {
		n = strconv.Itoa(len(def.Params))
	}
	if len(def.Params) == 0 {
		return "no parameters"
	}
	if def.ParamsOptional {
		return fmt.Sprintf("zero or %s parameters", n)
	}
	if len(def.Params) == 1 {
		return fmt.Sprintf("%s parameter", n)
	}
	return fmt.Sprintf("%s parameters", n)
}

// MustParse is Parse that panics on error, for statically correct specs.
func MustParse(spec string) Scheme {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// noArgs adapts a parameterless scheme value to the registry's
// constructor signature.
func noArgs(s Scheme) func([]int64) (Scheme, error) {
	return func([]int64) (Scheme, error) { return s, nil }
}

// The built-in scheme roster. Each entry's Help line doubles as the CLI
// documentation, so it names the paper-level idea, not the Go type.
func init() {
	Register(SchemeDef{
		Name: "ss",
		Help: "pure self-scheduling: one iteration per fetch-and-increment",
		New:  noArgs(SS{}),
	})
	Register(SchemeDef{
		Name: "sdss",
		Help: "shortest-delay self-scheduling (= ss assignment order; for Doacross)",
		New:  noArgs(SDSS{}),
	})
	Register(SchemeDef{
		Name:   "css",
		Params: []string{"K"},
		Help:   "chunk self-scheduling: fixed chunks of K iterations per fetch",
		New: func(args []int64) (Scheme, error) {
			if args[0] < 1 {
				return nil, fmt.Errorf("lowsched: css chunk %d < 1", args[0])
			}
			return CSS{K: args[0]}, nil
		},
	})
	Register(SchemeDef{
		Name: "gss",
		Help: "guided self-scheduling: chunk = ceil(remaining/P)",
		New:  noArgs(GSS{}),
	})
	Register(SchemeDef{
		Name:           "tss",
		Params:         []string{"F", "L"},
		ParamsOptional: true,
		Help:           "trapezoid self-scheduling: chunks decrease linearly F..L (default N/2P..1)",
		New: func(args []int64) (Scheme, error) {
			if len(args) == 0 {
				return TSS{}, nil
			}
			f, l := args[0], args[1]
			if l < 1 || f < l {
				return nil, fmt.Errorf("lowsched: tss requires f >= l >= 1 (got %d:%d)", f, l)
			}
			return TSS{First: f, Last: l}, nil
		},
	})
	Register(SchemeDef{
		Name:    "fsc",
		Aliases: []string{"factoring"},
		Help:    "factoring: rounds of P equal chunks, half the remainder per round",
		New:     noArgs(FSC{}),
	})
	Register(SchemeDef{
		Name: "fac2",
		Help: "factoring-2: every claim takes ceil(remaining/2P), no round barrier",
		New:  noArgs(FAC2{}),
	})
	Register(SchemeDef{
		Name:           "af",
		Params:         []string{"CV"},
		ParamsOptional: true,
		Help:           "adaptive factoring: chunk shrinks with iteration-time variability CV%",
		New: func(args []int64) (Scheme, error) {
			if len(args) == 0 {
				return AF{}, nil
			}
			if args[0] < 0 {
				return nil, fmt.Errorf("lowsched: af variability %d%% < 0", args[0])
			}
			return AF{CV: args[0]}, nil
		},
	})
	Register(SchemeDef{
		Name:           "tfss",
		Params:         []string{"F", "L"},
		ParamsOptional: true,
		Help:           "trapezoid factoring: TSS's linear decrease applied per round of P chunks",
		New: func(args []int64) (Scheme, error) {
			if len(args) == 0 {
				return TFSS{}, nil
			}
			f, l := args[0], args[1]
			if l < 1 || f < l {
				return nil, fmt.Errorf("lowsched: tfss requires f >= l >= 1 (got %d:%d)", f, l)
			}
			return TFSS{First: f, Last: l}, nil
		},
	})
	Register(SchemeDef{
		Name:    "afs",
		Aliases: []string{"affinity"},
		Help:    "affinity scheduling: per-processor blocks, guided local claims, stealing",
		New:     noArgs(AFS{}),
	})
	Register(SchemeDef{
		Name: "static-block",
		Help: "compile-time block pre-assignment (baseline; no dynamic balancing)",
		New:  noArgs(StaticBlock{}),
	})
	Register(SchemeDef{
		Name: "static-cyclic",
		Help: "compile-time cyclic pre-assignment (baseline; no dynamic balancing)",
		New:  noArgs(StaticCyclic{}),
	})
}
