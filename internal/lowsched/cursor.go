package lowsched

import (
	"repro/internal/machine"
	"repro/internal/pool"
)

// This file is the cursor-snapshot seam checkpoint/resume builds on.
//
// For cursor schemes, the entire claim state of one instance is a single
// int64 — the cursor word in the ICB's Index variable — plus the pure
// calculator that interprets it (calc.go). That makes an instance's
// scheduling progress trivially serializable: snapshot the cursor, and a
// later run re-seeds a fresh ICB's Index with it to continue claiming
// exactly where the first run stopped. The interfaces here expose just
// enough of a Policy for a checkpointing host to do that without knowing
// any scheme's encoding:
//
//   - CursorSource yields the calculator that owns an instance's cursor
//     encoding, so the host can turn the opaque word into "iterations
//     claimed so far" (ExecutedPrefix) and validate snapshots.
//   - CursorPinner/CursorRestorer cover per-instance calculator pinning
//     (the adaptive policy): the snapshot records which calculator spec
//     the instance was claiming under, and restore re-pins it, because a
//     cursor word is meaningless under a different encoding.
//
// Pre-assignment policies (static, affinity) keep claim state per
// processor, not per instance, and deliberately implement none of these;
// a checkpointing host rejects them up front.

// CursorSource is implemented by policies whose entire per-instance
// claim state is the cursor word in the ICB's Index variable. CursorCalc
// returns the pure calculator that interprets icb's cursor; ok is false
// when the instance is not cursor-driven (e.g. an attachment of a
// different scheme on a recycled block).
type CursorSource interface {
	CursorCalc(icb *pool.ICB) (ChunkCalculator, bool)
}

// CursorPinner is the snapshot side of per-instance calculator pinning:
// PinnedSpec returns the parseable scheme spec icb was pinned to at
// activation, or ok=false when the policy does not pin per instance
// (plain cursor schemes — every instance uses the policy's one
// calculator, and snapshots record no spec).
type CursorPinner interface {
	PinnedSpec(icb *pool.ICB) (spec string, ok bool)
}

// CursorRestorer is the restore side of pinning: re-attach the pinned
// calculator named by spec to a freshly created ICB (including whatever
// per-instance Init the pinned scheme requires), so a subsequently
// seeded cursor word is interpreted under its original encoding.
type CursorRestorer interface {
	RestoreCursor(pr machine.Proc, icb *pool.ICB, spec string) error
}

// CursorCalc implements CursorSource: every instance of a plain cursor
// scheme claims through the policy's one calculator.
func (c calcPolicy) CursorCalc(*pool.ICB) (ChunkCalculator, bool) { return c.calc, true }

// ExecutedPrefix returns how many leading iterations of [1, bound] the
// cursor state s has already assigned: claims advance a single shared
// cursor chain, so assigned iterations always form a contiguous prefix,
// and the next chunk's Lo-1 is its length (bound when s encodes
// exhaustion — fixed-stride cursors overshoot the bound on the final
// claim). For a quiescent instance whose claimed chunks all completed —
// the checkpoint invariant — this equals the instance's icount.
func ExecutedPrefix(c ChunkCalculator, s, bound int64) int64 {
	a, _, ok := c.Chunk(s, bound)
	if !ok {
		return bound
	}
	return a.Lo - 1
}
