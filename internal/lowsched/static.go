package lowsched

import (
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/pool"
)

// Needer is an optional Policy extension: a policy can veto the adoption
// of an instance by a processor that has no remaining assignment on it.
// Without the veto, processors with nothing to do on an instance can
// occupy its pcount slots and (deterministically, on the simulator)
// starve the processor that owns the work.
type Needer interface {
	Needs(pr machine.Proc, icb *pool.ICB) bool
}

// IsStatic reports whether the scheme is a compile-time pre-assignment.
// Static schemes cannot safely execute programs with Doacross loops: with
// iterations bound to processors, two concurrently active instances can
// deadlock (processor p awaiting a dependence whose source is statically
// bound to q, while q awaits one bound to p) — the executor rejects the
// combination.
func IsStatic(s Scheme) bool {
	m, ok := s.(interface{ Static() bool })
	return ok && m.Static()
}

// Needs reports whether the processor still has pending cyclic iterations
// on the instance.
func (StaticCyclic) Needs(pr machine.Proc, icb *pool.ICB) bool {
	st, ok := icb.Sched.(*staticCyclicState)
	if !ok || pr.ID() >= len(st.next) {
		return false
	}
	return st.next[pr.ID()].Load() <= icb.Bound
}

// StaticBlock is the compile-time block pre-scheduling baseline the
// paper's introduction argues against: processor p is statically assigned
// the p-th contiguous block of roughly N/P iterations of every instance.
// No shared index is fetched — each processor takes exactly its own block
// once — so the scheduling overhead is minimal, but nothing rebalances
// when iteration times vary (experiment E10 reproduces the [23]
// discussion: static scheduling is fine under low variance and loses
// badly under high variance).
//
// StaticBlock implements Policy directly: its pre-assignment bookkeeping
// is per-processor claim state, not a chunk cursor.
type StaticBlock struct{}

// Name returns "static-block".
func (StaticBlock) Name() string { return "static-block" }

// Static marks the scheme as a compile-time pre-assignment (see
// lowsched.IsStatic).
func (StaticBlock) Static() bool { return true }

type staticBlockState struct {
	taken []atomic.Bool // per processor
	// scheduled counts iterations handed out; the DELETE-triggering last
	// flag must mean "every iteration of the instance is scheduled", which
	// for a static assignment is NOT the claim of the block containing the
	// final iteration — other processors' blocks may still be unclaimed.
	scheduled atomic.Int64
}

// SchemeName marks the state as StaticBlock-owned (pool.SchedState).
func (*staticBlockState) SchemeName() string { return "static-block" }

// reset clears all claim progress for a recycled instance.
func (st *staticBlockState) reset() {
	for i := range st.taken {
		st.taken[i].Store(false)
	}
	st.scheduled.Store(0)
}

// Init attaches the per-processor claim flags, resetting a recycled
// block's typed state in place when its shape matches.
func (StaticBlock) Init(pr machine.Proc, icb *pool.ICB) {
	if st, ok := icb.Sched.(*staticBlockState); ok && len(st.taken) == pr.NumProcs() {
		st.reset()
		return
	}
	icb.Sched = &staticBlockState{taken: make([]atomic.Bool, pr.NumProcs())}
}

// Next claims the calling processor's block, once.
func (StaticBlock) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	st := icb.Sched.(*staticBlockState)
	p, np := int64(pr.ID()), int64(pr.NumProcs())
	if pr.ID() >= len(st.taken) || st.taken[pr.ID()].Swap(true) {
		return Assignment{}, false, false
	}
	n := icb.Bound
	lo := p*n/np + 1
	hi := (p + 1) * n / np
	if lo > hi {
		return Assignment{}, false, false // empty block (N < P)
	}
	last := st.scheduled.Add(hi-lo+1) == n
	return Assignment{Lo: lo, Hi: hi}, true, last
}

// Needs reports whether the processor's block is nonempty and unclaimed.
func (StaticBlock) Needs(pr machine.Proc, icb *pool.ICB) bool {
	st, ok := icb.Sched.(*staticBlockState)
	if !ok || pr.ID() >= len(st.taken) {
		return false
	}
	p, np := int64(pr.ID()), int64(pr.NumProcs())
	lo := p*icb.Bound/np + 1
	hi := (p + 1) * icb.Bound / np
	return lo <= hi && !st.taken[pr.ID()].Load()
}

// StaticCyclic is the compile-time cyclic pre-scheduling baseline:
// processor p is statically assigned iterations p+1, p+1+P, p+1+2P, ...
// of every instance. Cyclic assignment tolerates monotone cost trends
// better than blocks but still cannot react to run-time variance.
//
// StaticCyclic implements Policy directly (see StaticBlock).
type StaticCyclic struct{}

// Name returns "static-cyclic".
func (StaticCyclic) Name() string { return "static-cyclic" }

// Static marks the scheme as a compile-time pre-assignment (see
// lowsched.IsStatic).
func (StaticCyclic) Static() bool { return true }

type staticCyclicState struct {
	next      []atomic.Int64 // per processor: next iteration to take
	scheduled atomic.Int64   // iterations handed out (for the last flag)
}

// SchemeName marks the state as StaticCyclic-owned (pool.SchedState).
func (*staticCyclicState) SchemeName() string { return "static-cyclic" }

// reset restores every processor's cyclic cursor for a recycled instance.
func (st *staticCyclicState) reset() {
	for p := range st.next {
		st.next[p].Store(int64(p) + 1)
	}
	st.scheduled.Store(0)
}

// Init attaches the per-processor progress counters, resetting a recycled
// block's typed state in place when its shape matches.
func (StaticCyclic) Init(pr machine.Proc, icb *pool.ICB) {
	np := pr.NumProcs()
	if st, ok := icb.Sched.(*staticCyclicState); ok && len(st.next) == np {
		st.reset()
		return
	}
	st := &staticCyclicState{next: make([]atomic.Int64, np)}
	st.reset()
	icb.Sched = st
}

// Next takes the calling processor's next cyclic iteration.
func (StaticCyclic) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	st := icb.Sched.(*staticCyclicState)
	if pr.ID() >= len(st.next) {
		return Assignment{}, false, false
	}
	np := int64(pr.NumProcs())
	j := st.next[pr.ID()].Load()
	if j > icb.Bound {
		return Assignment{}, false, false
	}
	st.next[pr.ID()].Store(j + np)
	// The "last scheduled" flag fires exactly once, when the whole
	// instance has been handed out (not necessarily on iteration Bound:
	// another processor's cyclic sequence may still be pending then).
	last := st.scheduled.Add(1) == icb.Bound
	return Assignment{Lo: j, Hi: j}, true, last
}
