package lowsched

import (
	"fmt"
	"math"
)

// TFSS is trapezoid factoring self-scheduling: TSS's linearly
// decreasing chunk sizes combined with factoring's round structure —
// all P chunks of one round share a size, and the linear F..L decrement
// applies between rounds rather than between chunks. Rounds of equal
// chunks keep the per-claim arithmetic identical for P consecutive
// claims (less size skew within a round than TSS) while preserving the
// trapezoid's bounded claim count. With First or Last zero, the
// classical defaults First = ceil(N/(2P)), Last = 1 are used.
type TFSS struct {
	First, Last int64
}

// Name returns "TFSS" or "TFSS(f,l)".
func (t TFSS) Name() string {
	if t.First == 0 && t.Last == 0 {
		return "TFSS"
	}
	return fmt.Sprintf("TFSS(%d,%d)", t.First, t.Last)
}

// Spec returns "tfss" or "tfss:F:L".
func (t TFSS) Spec() string {
	if t.First == 0 && t.Last == 0 {
		return "tfss"
	}
	return fmt.Sprintf("tfss:%d:%d", t.First, t.Last)
}

// Calculator binds the trapezoid parameters and the machine size.
func (t TFSS) Calculator(nprocs int) ChunkCalculator {
	p := int64(nprocs)
	return tfssCalc{name: t.Name(), first: t.First, last: t.Last, p: p}
}

// tfssCalc: the cursor packs (chunk#, next index) into one word exactly
// like tssCalc — chunkNo<<32 | index — because the chunk size is a
// function of the chunk number (here through its round, chunkNo/P). The
// per-instance trapezoid is derived purely from the bound on every
// call, so the calculator holds nothing mutable.
type tfssCalc struct {
	name        string
	first, last int64
	p           int64
}

func (c tfssCalc) Name() string        { return c.name }
func (tfssCalc) Stride() (int64, bool) { return 0, false }

// ValidateBound rejects bounds that do not fit the packed index field.
func (tfssCalc) ValidateBound(bound int64) {
	if bound >= 1<<tssIdxBits {
		panic(fmt.Sprintf("lowsched: TFSS bound %d exceeds packed index range", bound))
	}
}

// params derives this instance's trapezoid: explicit (First, Last) when
// configured, else the classical defaults; delta is the per-round size
// decrement (f-l)/(R-1) for R = ceil(C/P) rounds of the C = ceil(2N/(f+l))
// trapezoid chunks.
func (c tfssCalc) params(bound int64) (f, l int64, delta float64) {
	f, l = c.first, c.last
	if f <= 0 {
		f = (bound + 2*c.p - 1) / (2 * c.p)
	}
	if l <= 0 {
		l = 1
	}
	if f < l {
		f = l
	}
	chunks := (2*bound + f + l - 1) / (f + l)
	if rounds := (chunks + c.p - 1) / c.p; rounds > 1 {
		delta = float64(f-l) / float64(rounds-1)
	}
	return f, l, delta
}

func (c tfssCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	idx := s & (1<<tssIdxBits - 1)
	chunkNo := s >> tssIdxBits
	if idx > bound {
		return Assignment{}, s, false
	}
	f, l, delta := c.params(bound)
	round := chunkNo / c.p
	size := f - int64(math.Round(float64(round)*delta))
	if size < l {
		size = l
	}
	hi := idx + size - 1
	if hi > bound {
		hi = bound
	}
	return Assignment{Lo: idx, Hi: hi}, (chunkNo+1)<<tssIdxBits | (hi + 1), true
}
