package lowsched

import (
	"fmt"
	"math"
)

// TSS is trapezoid self-scheduling: chunk sizes decrease linearly from
// First to Last over the instance's iterations. With First or Last zero,
// the classical defaults First = ceil(N/(2P)), Last = 1 are used.
type TSS struct {
	First, Last int64
}

// Name returns "TSS" or "TSS(f,l)".
func (t TSS) Name() string {
	if t.First == 0 && t.Last == 0 {
		return "TSS"
	}
	return fmt.Sprintf("TSS(%d,%d)", t.First, t.Last)
}

// Calculator binds the trapezoid parameters and the machine size.
func (t TSS) Calculator(nprocs int) ChunkCalculator {
	return tssCalc{name: t.Name(), first: t.First, last: t.Last, p: int64(nprocs)}
}

const tssIdxBits = 32

// tssCalc: the cursor packs (chunk#, next index) into one word —
// chunkNo<<32 | index — because the chunk size is a function of the chunk
// number. State 1 is chunk 0 at index 1. The per-instance trapezoid
// parameters (first chunk, decrement) are derived purely from the bound
// on every call, so the calculator itself holds nothing mutable.
type tssCalc struct {
	name        string
	first, last int64
	p           int64
}

func (c tssCalc) Name() string        { return c.name }
func (tssCalc) Stride() (int64, bool) { return 0, false }

// ValidateBound rejects bounds that do not fit the packed index field.
func (tssCalc) ValidateBound(bound int64) {
	if bound >= 1<<tssIdxBits {
		panic(fmt.Sprintf("lowsched: TSS bound %d exceeds packed index range", bound))
	}
}

// params derives this instance's trapezoid: explicit (First, Last) when
// configured, else the classical defaults; delta is the per-chunk size
// decrement (f-l)/(C-1) for C = ceil(2N/(f+l)) chunks.
func (c tssCalc) params(bound int64) (f, l int64, delta float64) {
	f, l = c.first, c.last
	if f <= 0 {
		f = (bound + 2*c.p - 1) / (2 * c.p)
	}
	if l <= 0 {
		l = 1
	}
	if f < l {
		f = l
	}
	if n := (2*bound + f + l - 1) / (f + l); n > 1 {
		delta = float64(f-l) / float64(n-1)
	}
	return f, l, delta
}

func (c tssCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	idx := s & (1<<tssIdxBits - 1)
	chunkNo := s >> tssIdxBits
	if idx > bound {
		return Assignment{}, s, false
	}
	f, l, delta := c.params(bound)
	size := f - int64(math.Round(float64(chunkNo)*delta))
	if size < l {
		size = l
	}
	hi := idx + size - 1
	if hi > bound {
		hi = bound
	}
	return Assignment{Lo: idx, Hi: hi}, (chunkNo+1)<<tssIdxBits | (hi + 1), true
}

// FSC is factoring self-scheduling: work is handed out in rounds; each
// round splits half of the remaining iterations into P equal chunks.
type FSC struct{}

// Name returns "FSC".
func (FSC) Name() string { return "FSC" }

// Calculator binds the machine size (the round width).
func (FSC) Calculator(nprocs int) ChunkCalculator { return fscCalc{p: int64(nprocs)} }

// fscCalc: the cursor packs (position in round, round start index) —
// taken<<33 | start. The round's chunk size is recomputed purely from the
// start index (chunk = ceil(remaining/2P)), so the original formulation's
// lock-guarded round state reduces to one compare-and-store word. State 1
// is position 0 of a round starting at index 1.
type fscCalc struct{ p int64 }

// fscIdxBits leaves headroom above the 32-bit bound for the round-start
// cursor, which can overshoot the bound by up to P when the final round
// rolls over.
const fscIdxBits = 33

func (fscCalc) Name() string          { return "FSC" }
func (fscCalc) Stride() (int64, bool) { return 0, false }

// ValidateBound rejects bounds that do not fit the packed start field.
func (fscCalc) ValidateBound(bound int64) {
	if bound >= 1<<(fscIdxBits-1) {
		panic(fmt.Sprintf("lowsched: FSC bound %d exceeds packed index range", bound))
	}
}

func (c fscCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	start := s & (1<<fscIdxBits - 1) // current round's first index
	taken := s >> fscIdxBits         // chunks already claimed this round
	size := (bound - start + 1 + 2*c.p - 1) / (2 * c.p)
	if size < 1 {
		size = 1
	}
	lo := start + taken*size
	if lo > bound {
		return Assignment{}, s, false
	}
	hi := lo + size - 1
	if hi > bound {
		hi = bound
	}
	var next int64
	if taken+1 == c.p {
		next = start + c.p*size // round exhausted: the next one starts here
	} else {
		next = (taken+1)<<fscIdxBits | start
	}
	return Assignment{Lo: lo, Hi: hi}, next, true
}
