package lowsched

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/pool"
)

// TSS is trapezoid self-scheduling: chunk sizes decrease linearly from
// First to Last over the instance's iterations. With First or Last zero,
// the classical defaults First = ceil(N/(2P)), Last = 1 are used.
type TSS struct {
	First, Last int64
}

// Name returns "TSS" or "TSS(f,l)".
func (t TSS) Name() string {
	if t.First == 0 && t.Last == 0 {
		return "TSS"
	}
	return fmt.Sprintf("TSS(%d,%d)", t.First, t.Last)
}

// tssState is per-instance: a packed (chunk#, next index) word manipulated
// with compare-and-store, plus the precomputed decrement.
type tssState struct {
	v     machine.SyncVar // chunkNo<<32 | nextIndex
	first int64
	last  int64
	delta float64 // per-chunk size decrement
}

// SchemeName marks the state as TSS-owned (pool.SchedState).
func (*tssState) SchemeName() string { return "TSS" }

const tssIdxBits = 32

// Init computes the trapezoid parameters for this instance.
func (t TSS) Init(pr machine.Proc, icb *pool.ICB) {
	n := icb.Bound
	if n >= 1<<tssIdxBits {
		panic(fmt.Sprintf("lowsched: TSS bound %d exceeds packed index range", n))
	}
	f, l := t.First, t.Last
	if f <= 0 {
		p := int64(pr.NumProcs())
		f = (n + 2*p - 1) / (2 * p)
	}
	if l <= 0 {
		l = 1
	}
	if f < l {
		f = l
	}
	st := &tssState{first: f, last: l}
	st.v.Init("tss", 1) // chunkNo 0, index 1
	// Number of chunks C = ceil(2N/(f+l)); delta = (f-l)/(C-1).
	if c := (2*n + f + l - 1) / (f + l); c > 1 {
		st.delta = float64(f-l) / float64(c-1)
	}
	icb.Sched = st
}

func (st *tssState) size(chunkNo int64) int64 {
	s := st.first - int64(math.Round(float64(chunkNo)*st.delta))
	if s < st.last {
		s = st.last
	}
	return s
}

// Next takes the next trapezoid chunk via compare-and-store on the packed
// state word.
func (t TSS) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	st := icb.Sched.(*tssState)
	for {
		s := st.v.Fetch(pr)
		idx := s & (1<<tssIdxBits - 1)
		chunkNo := s >> tssIdxBits
		if idx > icb.Bound {
			return Assignment{}, false, false
		}
		size := st.size(chunkNo)
		hi := idx + size - 1
		if hi > icb.Bound {
			hi = icb.Bound
		}
		next := (chunkNo+1)<<tssIdxBits | (hi + 1)
		if _, ok := st.v.Exec(pr, machine.Instr{
			Test: machine.TestEQ, TestVal: s, Op: machine.OpStore, Operand: next,
		}); ok {
			return Assignment{Lo: idx, Hi: hi}, true, hi == icb.Bound
		}
		pr.Spin()
	}
}

// FSC is factoring self-scheduling: work is handed out in rounds; each
// round splits half of the remaining iterations into P equal chunks.
// Its per-instance state is guarded by a spin lock, as in the original
// formulation.
type FSC struct{}

// Name returns "FSC".
func (FSC) Name() string { return "FSC" }

type fscState struct {
	lock       *machine.SpinLock
	next       int64
	chunkSize  int64
	chunksLeft int64
}

// SchemeName marks the state as FSC-owned (pool.SchedState).
func (*fscState) SchemeName() string { return "FSC" }

// Init prepares the first factoring round.
func (FSC) Init(pr machine.Proc, icb *pool.ICB) {
	p := int64(pr.NumProcs())
	st := &fscState{
		lock: machine.NewSpinLock("fsc"),
		next: 1,
	}
	st.startRound(icb.Bound, p)
	icb.Sched = st
}

func (st *fscState) startRound(bound, p int64) {
	remaining := bound - st.next + 1
	st.chunkSize = (remaining + 2*p - 1) / (2 * p)
	if st.chunkSize < 1 {
		st.chunkSize = 1
	}
	st.chunksLeft = p
}

// Next takes the next factoring chunk.
func (FSC) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	st := icb.Sched.(*fscState)
	st.lock.Lock(pr)
	defer st.lock.Unlock(pr)
	if st.next > icb.Bound {
		return Assignment{}, false, false
	}
	if st.chunksLeft == 0 {
		st.startRound(icb.Bound, int64(pr.NumProcs()))
	}
	lo := st.next
	hi := lo + st.chunkSize - 1
	if hi > icb.Bound {
		hi = icb.Bound
	}
	st.next = hi + 1
	st.chunksLeft--
	return Assignment{Lo: lo, Hi: hi}, true, hi == icb.Bound
}
