package lowsched

import (
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/pool"
)

// AFS is affinity scheduling (Markatos & LeBlanc), a follow-on to the
// paper's low-level schemes: each processor owns a block partition of the
// iteration space and repeatedly takes 1/P of its *remaining* block from
// the front (guided-style, locally, with no shared hot spot); a processor
// whose block is exhausted steals 1/P of the largest remaining block from
// its back. Included as a further baseline for the scheme-comparison
// experiments — it combines static scheduling's locality with dynamic
// rebalancing.
//
// AFS implements Policy directly: its per-processor block partition is
// pre-assignment state, not a chunk cursor.
type AFS struct{}

// Name returns "AFS".
func (AFS) Name() string { return "AFS" }

// afsState holds per-processor ranges packed as lo<<32|hi (iterations
// lo..hi-1 remain), manipulated with CAS.
type afsState struct {
	ranges    []atomic.Int64
	scheduled atomic.Int64
}

// SchemeName marks the state as AFS-owned (pool.SchedState).
func (*afsState) SchemeName() string { return "AFS" }

const afsShift = 32

func packRange(lo, hi int64) int64       { return lo<<afsShift | hi }
func unpackRange(r int64) (lo, hi int64) { return r >> afsShift, r & (1<<afsShift - 1) }

// reset repartitions the iteration space into per-processor blocks for a
// (fresh or recycled) instance.
func (st *afsState) reset(bound, np int64) {
	for p := int64(0); p < np; p++ {
		lo := p*bound/np + 1
		hi := (p+1)*bound/np + 1 // exclusive
		st.ranges[p].Store(packRange(lo, hi))
	}
	st.scheduled.Store(0)
}

// Init partitions the iteration space into per-processor blocks,
// resetting a recycled block's typed state in place when its shape
// matches.
func (AFS) Init(pr machine.Proc, icb *pool.ICB) {
	np := int64(pr.NumProcs())
	if icb.Bound >= 1<<afsShift {
		panic("lowsched: AFS bound exceeds packed range")
	}
	st, ok := icb.Sched.(*afsState)
	if !ok || int64(len(st.ranges)) != np {
		st = &afsState{ranges: make([]atomic.Int64, np)}
		icb.Sched = st
	}
	st.reset(icb.Bound, np)
}

// Next takes from the caller's own block, or steals from the fullest.
func (AFS) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	st := icb.Sched.(*afsState)
	np := int64(pr.NumProcs())
	self := pr.ID()
	if self >= len(st.ranges) {
		self = 0
	}

	// Own block: take ceil(remaining/P) from the front.
	for {
		r := st.ranges[self].Load()
		lo, hi := unpackRange(r)
		rem := hi - lo
		if rem <= 0 {
			break
		}
		size := (rem + np - 1) / np
		if st.ranges[self].CompareAndSwap(r, packRange(lo+size, hi)) {
			last := st.scheduled.Add(size) == icb.Bound
			return Assignment{Lo: lo, Hi: lo + size - 1}, true, last
		}
		pr.Spin()
	}

	// Steal: 1/P of the largest remaining block, from the back.
	for {
		victim, best := -1, int64(0)
		for p := range st.ranges {
			lo, hi := unpackRange(st.ranges[p].Load())
			if rem := hi - lo; rem > best {
				victim, best = p, rem
			}
		}
		if victim < 0 {
			return Assignment{}, false, false
		}
		r := st.ranges[victim].Load()
		lo, hi := unpackRange(r)
		rem := hi - lo
		if rem <= 0 {
			continue // raced; rescan
		}
		size := (rem + np - 1) / np
		if st.ranges[victim].CompareAndSwap(r, packRange(lo, hi-size)) {
			last := st.scheduled.Add(size) == icb.Bound
			return Assignment{Lo: hi - size, Hi: hi - 1}, true, last
		}
		pr.Spin()
	}
}
