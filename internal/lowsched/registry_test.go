package lowsched

import (
	"strconv"
	"strings"
	"testing"
)

// sampleArgs returns representative parameter vectors for a definition,
// chosen to satisfy every built-in's constraints (descending pairs for
// F:L-style params, small positives otherwise).
func sampleArgs(def SchemeDef) [][]int64 {
	switch len(def.Params) {
	case 0:
		return nil
	case 1:
		return [][]int64{{1}, {7}, {64}}
	case 2:
		return [][]int64{{12, 2}, {64, 1}, {5, 5}}
	default:
		args := make([]int64, len(def.Params))
		for i := range args {
			args[i] = int64(len(args) - i)
		}
		return [][]int64{args}
	}
}

// TestRegisteredSchemesRoundTripSpec is the registry property test:
// every scheme constructible from the registry implements Speccer, and
// Parse(s.Spec()) reconstructs an identical scheme value — so the
// canonical spec form is lossless for every registered scheme, current
// and future.
func TestRegisteredSchemesRoundTripSpec(t *testing.T) {
	for _, def := range Defs() {
		var specs []string
		if len(def.Params) == 0 || def.ParamsOptional {
			specs = append(specs, def.Name)
			for _, a := range def.Aliases {
				specs = append(specs, a)
			}
		}
		for _, args := range sampleArgs(def) {
			parts := []string{def.Name}
			for _, v := range args {
				parts = append(parts, strconv.FormatInt(v, 10))
			}
			specs = append(specs, strings.Join(parts, ":"))
		}
		for _, spec := range specs {
			s, err := Parse(spec)
			if err != nil {
				t.Errorf("%s: Parse(%q): %v", def.Name, spec, err)
				continue
			}
			sp, ok := s.(Speccer)
			if !ok {
				t.Errorf("%s: %T does not implement Speccer", def.Name, s)
				continue
			}
			s2, err := Parse(sp.Spec())
			if err != nil {
				t.Errorf("%s: Parse(Spec()=%q): %v", def.Name, sp.Spec(), err)
				continue
			}
			if s2 != s {
				t.Errorf("%s: Parse(%q) = %#v, but Parse(its Spec %q) = %#v",
					def.Name, spec, s, sp.Spec(), s2)
			}
		}
	}
}

// TestSpecsAllParse verifies the user-facing scheme list: every form
// Specs() displays, with its uppercase parameter placeholders
// substituted by integers, is accepted by Parse — the displayed list
// and the parser cannot drift because both read the same registry.
func TestSpecsAllParse(t *testing.T) {
	specs := Specs()
	if len(specs) == 0 {
		t.Fatal("Specs() is empty")
	}
	seen := map[string]bool{}
	for _, form := range specs {
		if seen[form] {
			t.Errorf("Specs() lists %q twice", form)
		}
		seen[form] = true
		parts := strings.Split(form, ":")
		for i := 1; i < len(parts); i++ {
			parts[i] = "3"
		}
		concrete := strings.Join(parts, ":")
		if _, err := Parse(concrete); err != nil {
			t.Errorf("Specs() form %q (as %q) does not parse: %v", form, concrete, err)
		}
	}
	// The fixed aliases and both arities of optional-parameter schemes
	// must be displayed (the KnownSchemes drift this registry removes).
	for _, want := range []string{"tss", "tss:F:L", "css:K", "factoring", "affinity", "fac2", "af", "af:CV", "tfss", "tfss:F:L"} {
		if !seen[want] {
			t.Errorf("Specs() omits %q", want)
		}
	}
}

// TestRegisterRejectsConflicts pins the registry's validation: dup
// names, invalid names and missing constructors are programming errors.
func TestRegisterRejectsConflicts(t *testing.T) {
	cases := map[string]SchemeDef{
		"dup name":        {Name: "ss", New: noArgs(SS{})},
		"dup alias":       {Name: "zz-test", Aliases: []string{"factoring"}, New: noArgs(SS{})},
		"empty name":      {New: noArgs(SS{})},
		"uppercase name":  {Name: "SS2", New: noArgs(SS{})},
		"colon in name":   {Name: "x:y", New: noArgs(SS{})},
		"nil constructor": {Name: "zz-test2"},
	}
	for name, def := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", def)
				}
			}()
			Register(def)
		})
	}
}
