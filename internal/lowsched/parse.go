package lowsched

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse constructs a Scheme from a specification string, for CLI tools and
// experiment configuration:
//
//	"ss"               pure self-scheduling
//	"sdss"             shortest-delay self-scheduling (= ss; for Doacross)
//	"css:K"            chunk scheduling with chunk size K
//	"gss"              guided self-scheduling
//	"tss"              trapezoid with default (N/2P, 1) parameters
//	"tss:F:L"          trapezoid with explicit first/last chunk sizes
//	"fsc"              factoring
//	"afs"              affinity scheduling (local blocks + stealing)
//	"static-block"     compile-time block pre-assignment (baseline)
//	"static-cyclic"    compile-time cyclic pre-assignment (baseline)
//
// Specifications are case-insensitive.
func Parse(spec string) (Scheme, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), ":")
	argInt := func(i int) (int64, error) {
		v, err := strconv.ParseInt(parts[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("lowsched: bad parameter %q in %q", parts[i], spec)
		}
		return v, nil
	}
	switch parts[0] {
	case "ss":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: ss takes no parameters: %q", spec)
		}
		return SS{}, nil
	case "css":
		if len(parts) != 2 {
			return nil, fmt.Errorf("lowsched: css requires a chunk size: %q", spec)
		}
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		if k < 1 {
			return nil, fmt.Errorf("lowsched: css chunk %d < 1", k)
		}
		return CSS{K: k}, nil
	case "sdss":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: sdss takes no parameters: %q", spec)
		}
		return SDSS{}, nil
	case "gss":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: gss takes no parameters: %q", spec)
		}
		return GSS{}, nil
	case "tss":
		switch len(parts) {
		case 1:
			return TSS{}, nil
		case 3:
			f, err := argInt(1)
			if err != nil {
				return nil, err
			}
			l, err := argInt(2)
			if err != nil {
				return nil, err
			}
			if l < 1 || f < l {
				return nil, fmt.Errorf("lowsched: tss requires f >= l >= 1: %q", spec)
			}
			return TSS{First: f, Last: l}, nil
		default:
			return nil, fmt.Errorf("lowsched: tss takes zero or two parameters: %q", spec)
		}
	case "static-block":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: static-block takes no parameters: %q", spec)
		}
		return StaticBlock{}, nil
	case "static-cyclic":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: static-cyclic takes no parameters: %q", spec)
		}
		return StaticCyclic{}, nil
	case "afs", "affinity":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: afs takes no parameters: %q", spec)
		}
		return AFS{}, nil
	case "fsc", "factoring":
		if len(parts) != 1 {
			return nil, fmt.Errorf("lowsched: fsc takes no parameters: %q", spec)
		}
		return FSC{}, nil
	default:
		return nil, fmt.Errorf("lowsched: unknown scheme %q", spec)
	}
}

// MustParse is Parse that panics on error, for statically correct specs.
func MustParse(spec string) Scheme {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}
