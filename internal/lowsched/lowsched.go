// Package lowsched implements the low-level self-scheduling schemes of
// Section III-B: the policies by which processors grab iterations of one
// instance of an innermost parallel loop using indivisible operations on
// the ICB's shared index variable.
//
// The package is split along the chunk-calculation seam (see calc.go):
// cursor schemes are pure ChunkCalculators driven by one shared claim
// protocol, pre-assignment schemes implement the kernel-facing Policy
// directly, and Bind resolves a user-facing Scheme into the Policy the
// execution kernel drives.
//
// Implemented schemes:
//
//   - SS: pure self-scheduling, one iteration per fetch-and-increment
//     (the original HEP scheme [7]; also the SDSS assignment order for
//     Doacross loops [16]).
//   - CSS(k): fixed-size chunk scheduling via fetch-and-add(k).
//   - GSS: guided self-scheduling [14], chunk = ceil(remaining/P),
//     realized with a fetch + compare-and-store loop (GSS's chunk size
//     depends on the current index, so a single fetch-and-add does not
//     suffice; the extra traffic is part of GSS's measured overhead).
//   - TSS(f,l): trapezoid self-scheduling, linearly decreasing chunks,
//     on a packed (chunk#, index) cursor word.
//   - FSC: factoring, rounds of P equal chunks halving per round, on a
//     packed (round position, round start) cursor word.
//   - static-block / static-cyclic / AFS: pre-assignment policies (see
//     static.go, affinity.go).
//
// The package also provides the Doacross cross-iteration dependence
// machinery: one synchronization flag per iteration, posted by the
// dependence source and awaited by the sink, which is how the low level
// enforces Doacross semantics regardless of the assignment scheme.
package lowsched

import "fmt"

// Assignment is a contiguous range of iterations [Lo, Hi], inclusive,
// assigned to one processor.
type Assignment struct {
	Lo, Hi int64
}

// Size returns the number of iterations in the assignment.
func (a Assignment) Size() int64 { return a.Hi - a.Lo + 1 }

func (a Assignment) String() string { return fmt.Sprintf("[%d,%d]", a.Lo, a.Hi) }

// Scheme selects a low-level self-scheduling scheme and carries its
// immutable parameters (e.g. the CSS chunk size). A Scheme holds no
// execution state: Bind resolves it into the Policy the kernel drives,
// and all per-instance state lives on the ICB.
type Scheme interface {
	// Name identifies the scheme, e.g. "GSS" or "CSS(4)".
	Name() string
}

// SS is pure self-scheduling: one iteration at a time.
type SS struct{}

// Name returns "SS".
func (SS) Name() string { return "SS" }

// Calculator returns the unit-stride calculator.
func (SS) Calculator(int) ChunkCalculator { return ssCalc{name: "SS"} }

// ssCalc: the cursor is the next unclaimed index; every chunk is one
// iteration, so the claim is the paper's {index <= b; Fetch(j)&Increment}.
type ssCalc struct{ name string }

func (c ssCalc) Name() string        { return c.name }
func (ssCalc) Stride() (int64, bool) { return 1, true }
func (ssCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	if s > bound {
		return Assignment{}, s, false
	}
	return Assignment{Lo: s, Hi: s}, s + 1, true
}

// SDSS is shortest-delay self-scheduling [16] for Doacross loops: the
// assignment policy that minimizes the start-up delay between
// cross-iteration-dependent iterations is one iteration at a time in
// index order — i.e. SS's fetch-and-increment — combined with the
// per-iteration dependence synchronization the executor attaches to
// Doacross instances. SDSS is therefore SS under a name that documents
// the intent; the contrast with chunked assignment is experiment E3.
type SDSS struct{ SS }

// Name returns "SDSS".
func (SDSS) Name() string { return "SDSS" }

// Calculator returns the unit-stride calculator under the SDSS name.
func (SDSS) Calculator(int) ChunkCalculator { return ssCalc{name: "SDSS"} }

// CSS is fixed-size chunk self-scheduling: k iterations per fetch.
type CSS struct {
	// K is the chunk size (>= 1).
	K int64
}

// Name returns "CSS(k)".
func (c CSS) Name() string { return fmt.Sprintf("CSS(%d)", c.K) }

// Calculator validates the chunk size and returns the k-stride calculator.
func (c CSS) Calculator(int) ChunkCalculator {
	if c.K < 1 {
		panic(fmt.Sprintf("lowsched: CSS chunk %d < 1", c.K))
	}
	return cssCalc{name: c.Name(), k: c.K}
}

// cssCalc: the cursor is the next unclaimed index; the claim is
// {index <= b; Fetch(j)&add(k)} with the final chunk clamped to the bound.
type cssCalc struct {
	name string
	k    int64
}

func (c cssCalc) Name() string          { return c.name }
func (c cssCalc) Stride() (int64, bool) { return c.k, true }
func (c cssCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	if s > bound {
		return Assignment{}, s, false
	}
	hi := s + c.k - 1
	if hi > bound {
		hi = bound
	}
	return Assignment{Lo: s, Hi: hi}, s + c.k, true
}

// GSS is guided self-scheduling: chunk = ceil(remaining / P).
type GSS struct{}

// Name returns "GSS".
func (GSS) Name() string { return "GSS" }

// Calculator binds the machine size (the P of ceil(remaining/P)).
func (GSS) Calculator(nprocs int) ChunkCalculator { return gssCalc{p: int64(nprocs)} }

// gssCalc: the cursor is the next unclaimed index; the chunk size depends
// on it, so claims go through the compare-and-store loop.
type gssCalc struct{ p int64 }

func (gssCalc) Name() string          { return "GSS" }
func (gssCalc) Stride() (int64, bool) { return 0, false }
func (c gssCalc) Chunk(s, bound int64) (Assignment, int64, bool) {
	if s > bound {
		return Assignment{}, s, false
	}
	size := (bound - s + c.p) / c.p // ceil(remaining/P)
	if size < 1 {
		size = 1
	}
	return Assignment{Lo: s, Hi: s + size - 1}, s + size, true
}
