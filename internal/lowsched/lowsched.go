// Package lowsched implements the low-level self-scheduling schemes of
// Section III-B: the policies by which processors grab iterations of one
// instance of an innermost parallel loop using indivisible operations on
// the ICB's shared index variable.
//
// Implemented schemes:
//
//   - SS: pure self-scheduling, one iteration per fetch-and-increment
//     (the original HEP scheme [7]; also the SDSS assignment order for
//     Doacross loops [16]).
//   - CSS(k): fixed-size chunk scheduling via fetch-and-add(k).
//   - GSS: guided self-scheduling [14], chunk = ceil(remaining/P),
//     realized with a fetch + compare-and-store loop (GSS's chunk size
//     depends on the current index, so a single fetch-and-add does not
//     suffice; the extra traffic is part of GSS's measured overhead).
//   - TSS(f,l): trapezoid self-scheduling, linearly decreasing chunks,
//     realized with a compare-and-store loop on a packed (chunk#, index)
//     state word.
//   - FSC: factoring, rounds of P equal chunks halving per round,
//     realized with a per-instance spin lock (as in its original
//     formulation).
//
// The package also provides the Doacross cross-iteration dependence
// machinery: one synchronization flag per iteration, posted by the
// dependence source and awaited by the sink, which is how the low level
// enforces Doacross semantics regardless of the assignment scheme.
package lowsched

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pool"
)

// Assignment is a contiguous range of iterations [Lo, Hi], inclusive,
// assigned to one processor.
type Assignment struct {
	Lo, Hi int64
}

// Size returns the number of iterations in the assignment.
func (a Assignment) Size() int64 { return a.Hi - a.Lo + 1 }

func (a Assignment) String() string { return fmt.Sprintf("[%d,%d]", a.Lo, a.Hi) }

// Scheme is a low-level self-scheduling policy. Implementations must be
// safe for concurrent use by multiple processors on multiple instances;
// all per-instance state lives on the ICB (Sched field or Index variable).
type Scheme interface {
	// Name identifies the scheme, e.g. "GSS" or "CSS(4)".
	Name() string
	// Init prepares per-instance state. It is called exactly once per
	// instance (by the activating processor pr), after the ICB is created
	// and before it becomes visible to other processors.
	Init(pr machine.Proc, icb *pool.ICB)
	// Next assigns the next chunk of iterations of icb's instance to the
	// calling processor. ok reports whether any iterations remained; last
	// reports that the assignment contains the instance's final iteration
	// (its receiver must DELETE the ICB from the task pool, Algorithm 3).
	Next(pr machine.Proc, icb *pool.ICB) (a Assignment, ok, last bool)
}

// SS is pure self-scheduling: one iteration at a time.
type SS struct{}

// Name returns "SS".
func (SS) Name() string { return "SS" }

// Init is a no-op: SS needs only the ICB's index variable.
func (SS) Init(machine.Proc, *pool.ICB) {}

// Next performs the paper's {index <= b; Fetch(j)&Increment}.
func (SS) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	j, ok := icb.Index.Exec(pr, machine.Instr{
		Test: machine.TestLE, TestVal: icb.Bound, Op: machine.OpInc,
	})
	if !ok {
		return Assignment{}, false, false
	}
	return Assignment{Lo: j, Hi: j}, true, j == icb.Bound
}

// SDSS is shortest-delay self-scheduling [16] for Doacross loops: the
// assignment policy that minimizes the start-up delay between
// cross-iteration-dependent iterations is one iteration at a time in
// index order — i.e. SS's fetch-and-increment — combined with the
// per-iteration dependence synchronization the executor attaches to
// Doacross instances. SDSS is therefore SS under a name that documents
// the intent; the contrast with chunked assignment is experiment E3.
type SDSS struct{ SS }

// Name returns "SDSS".
func (SDSS) Name() string { return "SDSS" }

// CSS is fixed-size chunk self-scheduling: k iterations per fetch.
type CSS struct {
	// K is the chunk size (>= 1).
	K int64
}

// Name returns "CSS(k)".
func (c CSS) Name() string { return fmt.Sprintf("CSS(%d)", c.K) }

// Init validates the chunk size.
func (c CSS) Init(machine.Proc, *pool.ICB) {
	if c.K < 1 {
		panic(fmt.Sprintf("lowsched: CSS chunk %d < 1", c.K))
	}
}

// Next performs {index <= b; Fetch(j)&add(k)} and clamps the chunk to the
// bound.
func (c CSS) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	j, ok := icb.Index.Exec(pr, machine.Instr{
		Test: machine.TestLE, TestVal: icb.Bound, Op: machine.OpFetchAdd, Operand: c.K,
	})
	if !ok {
		return Assignment{}, false, false
	}
	hi := j + c.K - 1
	if hi > icb.Bound {
		hi = icb.Bound
	}
	return Assignment{Lo: j, Hi: hi}, true, hi == icb.Bound
}

// GSS is guided self-scheduling: chunk = ceil(remaining / P).
type GSS struct{}

// Name returns "GSS".
func (GSS) Name() string { return "GSS" }

// Init is a no-op.
func (GSS) Init(machine.Proc, *pool.ICB) {}

// Next computes the guided chunk with a fetch + compare-and-store retry
// loop: {index = cur; Store(cur+size)} is the conditional-store
// realization of the indivisible read-modify-write GSS requires.
func (GSS) Next(pr machine.Proc, icb *pool.ICB) (Assignment, bool, bool) {
	p := int64(pr.NumProcs())
	for {
		cur := icb.Index.Fetch(pr)
		if cur > icb.Bound {
			return Assignment{}, false, false
		}
		remaining := icb.Bound - cur + 1
		size := (remaining + p - 1) / p
		if size < 1 {
			size = 1
		}
		if _, ok := icb.Index.Exec(pr, machine.Instr{
			Test: machine.TestEQ, TestVal: cur, Op: machine.OpStore, Operand: cur + size,
		}); ok {
			hi := cur + size - 1
			return Assignment{Lo: cur, Hi: hi}, true, hi == icb.Bound
		}
		pr.Spin() // lost the race; recompute from the new index
	}
}
