package lowsched

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/machine"
)

// multiProcSchemes are schemes whose per-instance state depends on every
// processor participating (static pre-assignments and affinity).
func multiProcSchemes() []Scheme {
	return []Scheme{StaticBlock{}, StaticCyclic{}, AFS{}}
}

// TestStaticCoverageAcrossProcs verifies that with every processor
// participating, the static schemes cover 1..N exactly once with exactly
// one last-flag — sequentially simulated with per-processor Proc handles.
func TestStaticCoverageAcrossProcs(t *testing.T) {
	for _, s := range multiProcSchemes() {
		for _, np := range []int{1, 3, 4, 8} {
			for _, bound := range []int64{1, 2, 7, 64, 100} {
				t.Run(fmt.Sprintf("%s/P=%d/N=%d", s.Name(), np, bound), func(t *testing.T) {
					pol := Bind(s, np)
					icb := newICB(bound)
					pol.Init(&tp{n: np}, icb)
					seen := map[int64]int{}
					lastCount := 0
					for id := 0; id < np; id++ {
						pr := &procWithID{tp: tp{n: np}, id: id}
						for {
							a, ok, last := pol.Next(pr, icb)
							if !ok {
								break
							}
							for j := a.Lo; j <= a.Hi; j++ {
								seen[j]++
							}
							if last {
								lastCount++
							}
						}
					}
					for j := int64(1); j <= bound; j++ {
						if seen[j] != 1 {
							t.Fatalf("iteration %d executed %d times", j, seen[j])
						}
					}
					if int64(len(seen)) != bound {
						t.Fatalf("covered %d iterations, want %d", len(seen), bound)
					}
					if lastCount != 1 {
						t.Fatalf("last-flag count = %d, want 1", lastCount)
					}
				})
			}
		}
	}
}

// TestStaticBlockAssignsContiguousRanges checks the block shapes.
func TestStaticBlockAssignsContiguousRanges(t *testing.T) {
	icb := newICB(10)
	StaticBlock{}.Init(&tp{n: 4}, icb)
	want := []Assignment{{1, 2}, {3, 5}, {6, 7}, {8, 10}}
	for id := 0; id < 4; id++ {
		pr := &procWithID{tp: tp{n: 4}, id: id}
		a, ok, _ := StaticBlock{}.Next(pr, icb)
		if !ok || a != want[id] {
			t.Errorf("proc %d block = %v ok=%v, want %v", id, a, ok, want[id])
		}
		// Second claim fails.
		if _, ok, _ := (StaticBlock{}).Next(pr, icb); ok {
			t.Errorf("proc %d claimed its block twice", id)
		}
	}
}

// TestStaticCyclicStride checks the cyclic sequences.
func TestStaticCyclicStride(t *testing.T) {
	icb := newICB(9)
	StaticCyclic{}.Init(&tp{n: 4}, icb)
	pr1 := &procWithID{tp: tp{n: 4}, id: 1}
	var got []int64
	for {
		a, ok, _ := (StaticCyclic{}).Next(pr1, icb)
		if !ok {
			break
		}
		got = append(got, a.Lo)
	}
	if fmt.Sprint(got) != "[2 6]" {
		t.Errorf("proc 1 cyclic sequence = %v, want [2 6]", got)
	}
}

// TestStaticConcurrent verifies coverage on the real machine.
func TestStaticConcurrent(t *testing.T) {
	const bound = 1000
	for _, s := range multiProcSchemes() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			eng := machine.NewReal(machine.RealConfig{P: 8})
			pol := Bind(s, 8)
			icb := newICB(bound)
			pol.Init(&tp{n: 8}, icb)
			var mu sync.Mutex
			seen := make([]int, bound+1)
			lasts := 0
			eng.Run(func(pr machine.Proc) {
				for {
					a, ok, last := pol.Next(pr, icb)
					if !ok {
						return
					}
					mu.Lock()
					for j := a.Lo; j <= a.Hi; j++ {
						seen[j]++
					}
					if last {
						lasts++
					}
					mu.Unlock()
				}
			})
			for j := 1; j <= bound; j++ {
				if seen[j] != 1 {
					t.Fatalf("iteration %d executed %d times", j, seen[j])
				}
			}
			if lasts != 1 {
				t.Fatalf("last-flags = %d", lasts)
			}
		})
	}
}

func TestParseStatic(t *testing.T) {
	for spec, name := range map[string]string{
		"static-block":  "static-block",
		"static-cyclic": "static-cyclic",
		"sdss":          "SDSS",
		"afs":           "AFS",
		"affinity":      "AFS",
	} {
		s, err := Parse(spec)
		if err != nil || s.Name() != name {
			t.Errorf("Parse(%q) = %v, %v", spec, s, err)
		}
	}
	for _, bad := range []string{"static-block:2", "static-cyclic:1", "sdss:1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// procWithID is tp with a configurable processor ID.
type procWithID struct {
	tp
	id int
}

func (p *procWithID) ID() int { return p.id }
