package lowsched

import "fmt"

// Spec returns a scheme's canonical specification string: the form
// Parse accepts that reconstructs an identical scheme value. Name() is
// the human-readable display form ("CSS(4)"); Spec() is the machine
// round-trip form ("css:4"). Every registered scheme implements
// Speccer, and the registry property test pins Parse(Spec()) == self.
type Speccer interface {
	Spec() string
}

// Spec returns "ss".
func (SS) Spec() string { return "ss" }

// Spec returns "sdss".
func (SDSS) Spec() string { return "sdss" }

// Spec returns "css:K".
func (c CSS) Spec() string { return fmt.Sprintf("css:%d", c.K) }

// Spec returns "gss".
func (GSS) Spec() string { return "gss" }

// Spec returns "tss" or "tss:F:L".
func (t TSS) Spec() string {
	if t.First == 0 && t.Last == 0 {
		return "tss"
	}
	return fmt.Sprintf("tss:%d:%d", t.First, t.Last)
}

// Spec returns "fsc".
func (FSC) Spec() string { return "fsc" }

// Spec returns "afs".
func (AFS) Spec() string { return "afs" }

// Spec returns "static-block".
func (StaticBlock) Spec() string { return "static-block" }

// Spec returns "static-cyclic".
func (StaticCyclic) Spec() string { return "static-cyclic" }
