package lowsched

// This file is the measurement seam between the executor and adaptive
// policies. A policy that adapts between loop instances needs two
// things the kernel-facing Policy interface deliberately does not
// expose: fresh per-run state (so concurrent runs do not share fitter
// history) and a read path into the run's overhead counters (so the
// eq. (2) model can be fitted from measurements instead of assumed
// constants). PolicyScheme provides the first, RuntimeBinder the
// second; both are optional extensions the executor probes with type
// assertions, so static schemes and pure calculators are untouched.

// PolicyScheme is a Scheme that must construct a fresh Policy for every
// run — the adaptive policy's fitter state, for example, is per-run
// mutable and must not be shared by concurrent executions of one
// Options value. Bind resolves a PolicyScheme through NewPolicy instead
// of the stateless CalcScheme/Policy paths.
type PolicyScheme interface {
	Scheme
	// NewPolicy returns a fresh Policy bound to the machine size.
	NewPolicy(nprocs int) Policy
}

// RuntimeSample is one merged reading of the executor counters an
// adaptive policy's fitter consumes: the Section IV overhead
// decomposition (processor time in engine units) plus the claim/search
// denominators that turn the sums into per-operation costs. Samples are
// cumulative; fitters difference consecutive samples.
type RuntimeSample struct {
	// O1Time is summed iteration-grab overhead, O2Time summed SEARCH
	// overhead, O3Time summed EXIT/ENTER overhead, BodyTime summed
	// useful body time.
	O1Time, O2Time, O3Time, BodyTime int64
	// Iterations, Chunks, Searches and Instances are the corresponding
	// event counts (per-iteration, per-claim, per-search, per-instance).
	Iterations, Chunks, Searches, Instances int64
}

// AdaptEvent labels a notable adaptive-policy event for the stats
// spine, so a run's adaptation trajectory is observable from the
// outside (Snapshot, /metrics) without reaching into the policy.
type AdaptEvent int

const (
	// AdaptFit: the policy refitted its utilization model.
	AdaptFit AdaptEvent = iota
	// AdaptSwitch: the refit changed the active scheme.
	AdaptSwitch
)

// Runtime is the executor-provided measurement surface: a sampler over
// the run's stats spine and an event sink feeding the spine's
// adaptation counters. Both funcs are safe for concurrent use and
// charge no machine time (host-side bookkeeping, like all obs
// recording). A zero Runtime (nil funcs) is legal — policies must
// degrade to their static default when unbound, which is what happens
// under direct Bind use in unit tests.
type Runtime struct {
	// Sample reads the current cumulative counters.
	Sample func() RuntimeSample
	// Note records an adaptation event.
	Note func(AdaptEvent)
}

// RuntimeBinder is an optional Policy extension: the executor offers
// the measurement surface once per run, after binding and before any
// worker starts, to every policy that wants it.
type RuntimeBinder interface {
	BindRuntime(Runtime)
}
