package lowsched

// FAC2 is the fixed-ratio variant of factoring (Hummel et al.'s FAC2,
// the form practical runtimes implement): every claim takes half of the
// remaining iterations divided evenly over the processors, chunk =
// ceil(remaining / 2P). Unlike FSC it keeps no round position — the
// chunk size is recomputed from the cursor alone on every claim — so
// within a "round" of P claims sizes already taper slightly instead of
// staying equal. The cursor is the plain next-unclaimed index, making
// FAC2 the cheapest of the factoring family: same claim protocol as
// GSS, but batches only half the remainder per round and therefore ends
// with P-fold smaller final chunks (more rebalancing slack under
// variance, at twice the claim count).
type FAC2 struct{}

// Name returns "FAC2".
func (FAC2) Name() string { return "FAC2" }

// Spec returns "fac2".
func (FAC2) Spec() string { return "fac2" }

// Calculator binds the machine size (the 2P divisor).
func (FAC2) Calculator(nprocs int) ChunkCalculator { return fac2Calc{p: int64(nprocs)} }

// fac2Calc: the cursor is the next unclaimed index; the chunk size
// depends on it, so claims go through the compare-and-store loop.
type fac2Calc struct{ p int64 }

func (fac2Calc) Name() string          { return "FAC2" }
func (fac2Calc) Stride() (int64, bool) { return 0, false }
func (c fac2Calc) Chunk(s, bound int64) (Assignment, int64, bool) {
	if s > bound {
		return Assignment{}, s, false
	}
	size := (bound - s + 1 + 2*c.p - 1) / (2 * c.p) // ceil(remaining/2P)
	if size < 1 {
		size = 1
	}
	return Assignment{Lo: s, Hi: s + size - 1}, s + size, true
}
