// Package loadcheck is the workload-checks harness for the serving
// layer: sustained-load cases run against a runner.Runner under a
// declared machine class, with throughput, memory and fairness goals
// asserted in CI.
//
// The shape follows nightly "workload checks" tooling: a machine class
// lays out the resource envelope (worker slots, simulated processors,
// queue depth) the check simulates being fit-for-purpose on; a case
// pairs a submission workload with optimization goals; a report says
// whether the goals were met. Checks run entirely on the virtual
// engine, so a case measures the serving path (admission, scheduling,
// dispatch, census) rather than host-machine compute — goals are
// deliberately conservative so the suite gates regressions in CI
// without flaking on slow runners.
package loadcheck

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro"
	"repro/runner"
)

// MachineClass lays out the resource envelope a check simulates: how
// many runs execute at once, how many simulated processors each gets,
// and how deep the shared backlog may grow.
type MachineClass struct {
	Name string
	// Workers is the runner's MaxConcurrent.
	Workers int
	// Procs is the simulated processor count each run executes on.
	Procs int
	// QueueLimit bounds the shared backlog (0 = unbounded).
	QueueLimit int
}

// Classes declares the machine classes cases may target.
var Classes = map[string]MachineClass{
	// typical is a mid-size serving box: several worker slots, a wide
	// simulated machine, a deep backlog.
	"typical": {Name: "typical", Workers: 4, Procs: 8, QueueLimit: 1024},
	// small is a constrained dev box: one slot, a narrow machine, a
	// shallow backlog — admission pressure shows up fast.
	"small": {Name: "small", Workers: 1, Procs: 2, QueueLimit: 64},
}

// Stream is one tenant's submission pattern within a case.
type Stream struct {
	// Tenant attributes the stream's submissions ("" = anonymous).
	Tenant string
	// Runs is how many programs the stream submits.
	Runs int
	// Iters sizes each program (a flat doall of cheap iterations).
	Iters int64
	// Burst submits the whole stream back-to-back before any other
	// stream's next submission; steady streams interleave round-robin.
	Burst bool
	// CheckpointEvery runs each submission as a chain of periodic-
	// snapshot legs (every that-many chunk claims) — the clustered
	// daemon's failover-restore-point cadence. The goals then measure
	// what the snapshot machinery costs the serving path.
	CheckpointEvery int64
}

// FairnessGoal asserts the dispatch-order share between two tenants
// over Window dispatched runs, Skip runs into the sequence (the first
// dispatches go to idle slots in arrival order, before a backlog exists
// for the scheduler to arbitrate): Tenants[0]'s completed iterations
// over Tenants[1]'s must fall within [Ratio-Tol, Ratio+Tol].
type FairnessGoal struct {
	Tenants [2]string
	Skip    int
	Window  int
	Ratio   float64
	Tol     float64
}

// Goals are a case's pass/fail criteria. Zero fields are unchecked.
type Goals struct {
	// MinThroughput is completed runs per second over the case's wall
	// clock, submission included.
	MinThroughput float64
	// MaxBytesPerRun caps allocated bytes (runtime TotalAlloc delta)
	// per completed run.
	MaxBytesPerRun int64
	// MaxShed caps admission rejections; -1 means shedding is expected
	// and unbounded, 0 (the zero value) means none tolerated.
	MaxShed int
	// Fairness asserts a weighted share between two tenants.
	Fairness *FairnessGoal
}

// Case is one workload check: a machine class, a scheduler, tenants,
// submission streams and goals.
type Case struct {
	Name      string
	Class     string
	Scheduler string
	Tenants   map[string]runner.Tenant
	Streams   []Stream
	Goals     Goals
}

// Report is a case's measured outcome.
type Report struct {
	Case      string
	Class     string
	Submitted int
	Completed int
	Shed      int
	Elapsed   time.Duration
	// Throughput is completed runs per second of wall clock.
	Throughput float64
	// BytesPerRun is allocated bytes per completed run.
	BytesPerRun int64
	// TenantIters is completed iterations by tenant over the fairness
	// window (the whole run set when no fairness goal is declared).
	TenantIters map[string]int64
	// AdmissionNS is each completed run's submit→dispatch latency in
	// nanoseconds, in dispatch order — the queueing delay the serving
	// layer added on top of execution. Benchkit summarizes it as the
	// admission_ns trend metric.
	AdmissionNS []float64
	// FairnessRatio is the observed share ratio for the fairness goal
	// (0 when none declared).
	FairnessRatio float64
}

// Check returns the goal violations, empty when the case passes.
func (r Report) Check(g Goals) []string {
	var bad []string
	if g.MinThroughput > 0 && r.Throughput < g.MinThroughput {
		bad = append(bad, fmt.Sprintf("throughput %.1f runs/s below goal %.1f", r.Throughput, g.MinThroughput))
	}
	if g.MaxBytesPerRun > 0 && r.BytesPerRun > g.MaxBytesPerRun {
		bad = append(bad, fmt.Sprintf("memory %d B/run over goal %d", r.BytesPerRun, g.MaxBytesPerRun))
	}
	if g.MaxShed >= 0 && r.Shed > g.MaxShed {
		bad = append(bad, fmt.Sprintf("shed %d submissions, goal allows %d", r.Shed, g.MaxShed))
	}
	if f := g.Fairness; f != nil {
		if r.FairnessRatio < f.Ratio-f.Tol || r.FairnessRatio > f.Ratio+f.Tol {
			bad = append(bad, fmt.Sprintf("fairness %s:%s = %.2f outside %g±%g",
				f.Tenants[0], f.Tenants[1], r.FairnessRatio, f.Ratio, f.Tol))
		}
	}
	return bad
}

// program compiles a flat doall of n cheap iterations.
func program(n int64) (*repro.Program, error) {
	nest, err := repro.Build(func(b *repro.B) {
		b.DoallLeaf("L", repro.Const(n), func(e repro.Env, iv repro.IVec, j int64) {
			e.Work(10)
		})
	})
	if err != nil {
		return nil, err
	}
	return repro.Compile(nest)
}

// Run executes one case to completion and measures it.
func Run(ctx context.Context, c Case) (Report, error) {
	class, ok := Classes[c.Class]
	if !ok {
		return Report{}, fmt.Errorf("loadcheck: unknown machine class %q", c.Class)
	}
	rn := runner.New(runner.Config{
		MaxConcurrent: class.Workers,
		QueueLimit:    class.QueueLimit,
		Scheduler:     c.Scheduler,
		Tenants:       c.Tenants,
	})
	defer rn.Close()

	// One compiled program per distinct size: compilation is not the
	// serving path under test.
	progs := map[int64]*repro.Program{}
	for _, st := range c.Streams {
		if progs[st.Iters] == nil {
			p, err := program(st.Iters)
			if err != nil {
				return Report{}, err
			}
			progs[st.Iters] = p
		}
	}

	var ms0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	rep := Report{Case: c.Name, Class: c.Class, TenantIters: map[string]int64{}}
	var runs []*runner.Run
	submit := func(st Stream) error {
		r, err := rn.Submit(runner.Submission{
			Program:         progs[st.Iters],
			Options:         repro.Options{Procs: class.Procs},
			Tenant:          st.Tenant,
			CheckpointEvery: st.CheckpointEvery,
		})
		rep.Submitted++
		switch {
		case err == nil:
			runs = append(runs, r)
		case errors.Is(err, runner.ErrQueueFull),
			errors.Is(err, runner.ErrTenantQueueFull),
			errors.Is(err, runner.ErrTenantInflight):
			rep.Shed++
		default:
			return err
		}
		return nil
	}
	// Burst streams drain fully at their turn; steady streams interleave
	// one submission per round.
	pending := make([]int, len(c.Streams))
	for i, st := range c.Streams {
		pending[i] = st.Runs
	}
	for remaining := true; remaining; {
		remaining = false
		for i, st := range c.Streams {
			if pending[i] == 0 {
				continue
			}
			n := 1
			if st.Burst {
				n = pending[i]
			}
			for k := 0; k < n; k++ {
				if err := submit(st); err != nil {
					return Report{}, err
				}
			}
			pending[i] -= n
			remaining = remaining || pending[i] > 0
		}
	}

	if err := rn.Drain(ctx); err != nil {
		return Report{}, fmt.Errorf("loadcheck: case %s: %w", c.Name, err)
	}
	rep.Elapsed = time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	// Fairness is a dispatch-order property: reconstruct the dispatch
	// sequence from per-run start times and account the goal window
	// (every completed run when no goal is declared).
	sort.Slice(runs, func(i, j int) bool {
		_, si, _ := runs[i].Times()
		_, sj, _ := runs[j].Times()
		return si.Before(sj)
	})
	lo, hi := 0, len(runs)
	if f := c.Goals.Fairness; f != nil {
		lo = f.Skip
		if f.Window > 0 && lo+f.Window < hi {
			hi = lo + f.Window
		}
	}
	for i, r := range runs {
		res, err := r.Result()
		if err != nil {
			return Report{}, fmt.Errorf("loadcheck: case %s: run %s: %w", c.Name, r.ID(), err)
		}
		rep.Completed++
		if i >= lo && i < hi {
			rep.TenantIters[tenantKey(r.Tenant())] += res.Stats.Iterations
		}
		sub, started, _ := r.Times()
		if !started.IsZero() {
			rep.AdmissionNS = append(rep.AdmissionNS, float64(started.Sub(sub).Nanoseconds()))
		}
	}
	rep.Throughput = float64(rep.Completed) / rep.Elapsed.Seconds()
	if rep.Completed > 0 {
		rep.BytesPerRun = int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(rep.Completed)
	}
	if f := c.Goals.Fairness; f != nil {
		a := rep.TenantIters[tenantKey(f.Tenants[0])]
		b := rep.TenantIters[tenantKey(f.Tenants[1])]
		if b > 0 {
			rep.FairnessRatio = float64(a) / float64(b)
		}
	}
	return rep, nil
}

func tenantKey(t string) string {
	if t == "" {
		return "anonymous"
	}
	return t
}
