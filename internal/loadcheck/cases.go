package loadcheck

import "repro/runner"

// Cases is the workload-check registry, keyed by machine class so CI
// can run one class's cases (the workflow runs "typical"; "small" rides
// along in the same suite — both are cheap on the virtual engine).
var Cases = []Case{
	{
		// Sustained anonymous load of tiny nests through the default
		// FIFO path: the baseline serving-throughput and per-run
		// allocation check.
		Name:      "steady_tiny",
		Class:     "typical",
		Scheduler: "fifo",
		Streams: []Stream{
			{Runs: 300, Iters: 32},
		},
		Goals: Goals{
			MinThroughput:  10,
			MaxBytesPerRun: 32 << 20,
		},
	},
	{
		// A bursty heavyweight tenant against a steady lightweight one
		// under wfq: the burst must not capture the dispatch order —
		// the 3:1 weighted share holds over the contended window.
		Name:      "mixed_tenant_burst",
		Class:     "small",
		Scheduler: "wfq",
		Tenants: map[string]runner.Tenant{
			"gold":   {Weight: 3},
			"bronze": {Weight: 1},
		},
		Streams: []Stream{
			{Tenant: "bronze", Runs: 24, Iters: 48, Burst: true},
			{Tenant: "gold", Runs: 24, Iters: 48, Burst: true},
		},
		Goals: Goals{
			MinThroughput: 5,
			Fairness: &FairnessGoal{
				Tenants: [2]string{"gold", "bronze"},
				Skip:    8,
				Window:  16,
				Ratio:   3,
				Tol:     1.0,
			},
		},
	},
	{
		// Sustained load with every run chained into periodic-snapshot
		// legs — the cadence a clustered daemon imposes for failover
		// restore points. The throughput goal bounds what the snapshot
		// machinery may cost the serving path; the memory goal bounds
		// the per-leg snapshot allocations.
		Name:      "chained_snapshots",
		Class:     "typical",
		Scheduler: "fifo",
		Streams: []Stream{
			{Runs: 150, Iters: 32, CheckpointEvery: 4},
		},
		Goals: Goals{
			MinThroughput:  5,
			MaxBytesPerRun: 48 << 20,
		},
	},
	{
		// Admission pressure on the small class: a quota-capped tenant
		// floods the box; the box sheds cleanly (typed rejections, no
		// wedge) and completes everything it admitted.
		Name:      "admission_shed",
		Class:     "small",
		Scheduler: "fifo",
		Tenants: map[string]runner.Tenant{
			"capped": {MaxInflight: 4},
		},
		Streams: []Stream{
			{Tenant: "capped", Runs: 64, Iters: 32, Burst: true},
		},
		Goals: Goals{
			MinThroughput: 2,
			MaxShed:       -1, // shedding is the point
		},
	},
}
