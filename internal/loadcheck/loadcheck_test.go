package loadcheck

import (
	"context"
	"testing"
	"time"
)

// TestCases runs every registered workload check against its goals.
// This is the CI surface: make verify-serve runs this suite under
// -race -shuffle=on.
func TestCases(t *testing.T) {
	for _, c := range Cases {
		t.Run(c.Name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			rep, err := Run(ctx, c)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s@%s: %d submitted, %d completed, %d shed, %.1f runs/s, %d B/run, iters %v",
				rep.Case, rep.Class, rep.Submitted, rep.Completed, rep.Shed,
				rep.Throughput, rep.BytesPerRun, rep.TenantIters)
			for _, v := range rep.Check(c.Goals) {
				t.Error(v)
			}
			if rep.Completed+rep.Shed != rep.Submitted {
				t.Errorf("accounting: %d completed + %d shed != %d submitted",
					rep.Completed, rep.Shed, rep.Submitted)
			}
		})
	}
}

// TestUnknownClass pins the harness's own validation.
func TestUnknownClass(t *testing.T) {
	_, err := Run(context.Background(), Case{Name: "x", Class: "mainframe"})
	if err == nil {
		t.Fatal("unknown machine class accepted")
	}
}
