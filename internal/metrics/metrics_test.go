package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-1.2909944) > 1e-6 {
		t.Errorf("std = %v", s.Std)
	}
	if got := Summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Errorf("singleton summary = %+v", one)
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 25) != 4 {
		t.Error("Speedup(100,25) != 4")
	}
	if Speedup(1, 0) != 0 {
		t.Error("Speedup by zero should be 0")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int64{10, 10, 10}); got != 1 {
		t.Errorf("balanced = %v", got)
	}
	if got := Imbalance([]int64{30, 0, 0}); got != 3 {
		t.Errorf("imbalanced = %v", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]int64{0, 0}) != 0 {
		t.Error("degenerate imbalance not 0")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Error("RelErr(11,10) != 0.1")
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) not +Inf")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Utilization vs k", "k", "eta", "note")
	tb.Add(1, 0.51234, "base")
	tb.Add(16, 0.98765, "best")
	out := tb.String()
	for _, want := range []string{"## Utilization vs k", "k", "eta", "0.5123", "0.9877", "best", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns align: header row and data rows have consistent prefixes.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}
