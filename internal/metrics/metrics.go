// Package metrics provides the small statistics and table-formatting
// toolkit the experiments use to report results in the shape of the
// paper's figures and equations.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes summary statistics. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g max=%.3g", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// Speedup returns serial/parallel (0 when parallel is 0).
func Speedup(serial, parallel float64) float64 {
	if parallel == 0 {
		return 0
	}
	return serial / parallel
}

// Imbalance returns max/mean of per-processor busy times (1.0 = perfectly
// balanced; 0 for empty or all-idle input).
func Imbalance(busy []int64) float64 {
	if len(busy) == 0 {
		return 0
	}
	var sum, max int64
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(busy))
	return float64(max) / mean
}

// RelErr returns |got-want| / |want| (infinite for want = 0, got != 0).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Table accumulates rows and renders them column-aligned, in the style
// used by EXPERIMENTS.md.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Add appends a row; cells are formatted with %v, and float64 cells with
// four significant digits.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", width[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}
