package repro_test

import (
	"fmt"

	"repro"
)

// The deterministic virtual machine makes these examples' outputs exact:
// the same program, scheme and machine configuration always produce the
// same makespan and statistics.

func ExampleExecute() {
	nest := repro.MustBuild(func(b *repro.B) {
		b.DoallLeaf("loop", repro.Const(100), func(e repro.Env, iv repro.IVec, j int64) {
			e.Work(500)
		})
	})
	res, err := repro.Execute(nest, repro.Options{Procs: 4, Scheme: "gss", AccessCost: 10})
	if err != nil {
		panic(err)
	}
	fmt.Println("iterations:", res.Stats.Iterations)
	fmt.Println("instances:", res.Stats.Instances)
	fmt.Println("makespan:", res.Makespan)
	// Output:
	// iterations: 100
	// instances: 1
	// makespan: 13080
}

func ExampleCompile_descriptorTables() {
	nest := repro.MustBuild(func(b *repro.B) {
		b.Serial("K", repro.Const(2), func(b *repro.B) {
			b.DoallLeaf("C", repro.Const(4), func(e repro.Env, iv repro.IVec, j int64) { e.Work(1) })
			b.DoallLeaf("D", repro.Const(4), func(e repro.Env, iv repro.IVec, j int64) { e.Work(1) })
		})
	})
	prog, err := repro.Compile(nest)
	if err != nil {
		panic(err)
	}
	fmt.Print(prog.DepthBoundTable())
	// Output:
	// loop  DEPTH  BOUND
	// C         1  4
	// D         1  4
}

func ExampleProgram_Run_doacross() {
	// A distance-1 recurrence whose dependent head posts early so the
	// expensive tails overlap.
	nest := repro.MustBuild(func(b *repro.B) {
		b.DoacrossLeafManual("W", repro.Const(50), 1, func(e repro.Env, iv repro.IVec, j int64) {
			e.AwaitDep()
			e.Work(10) // dependent head
			e.PostDep()
			e.Work(90) // overlappable tail
		})
	})
	prog, err := repro.Compile(nest)
	if err != nil {
		panic(err)
	}
	res, err := prog.Run(repro.Options{Procs: 8, AccessCost: 2, Verify: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("verified iterations:", res.Stats.Iterations)
	// Output:
	// verified iterations: 50
}
