// Package runner serves scheduling runs: a Runner accepts compiled
// repro Programs, executes up to MaxConcurrent of them in parallel over
// the run-manager subsystem (internal/runmgr), and exposes each run's
// lifecycle, streaming progress snapshots and final Result through a
// Run handle.
//
// Each submission is validated up front with Options.Validate, so a
// misconfigured run is rejected with the repro sentinel errors before
// anything is enqueued. A running submission is cancellable at any
// time: cancellation trips the run's interrupt, the processors drain
// out at their next preemption point (see Program.RunContext), and the
// handle finalizes with context.Canceled while the Runner keeps serving
// other runs.
package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runmgr"
)

// State re-exports the run lifecycle from the run-manager subsystem:
// queued → running → done | failed | cancelled.
type State = runmgr.State

// Lifecycle states.
const (
	StateQueued       = runmgr.StateQueued
	StateRunning      = runmgr.StateRunning
	StateDone         = runmgr.StateDone
	StateFailed       = runmgr.StateFailed
	StateCancelled    = runmgr.StateCancelled
	StateCheckpointed = runmgr.StateCheckpointed
)

// Runner errors (queue conditions come from the manager).
var (
	// ErrNoProgram reports a Submission without a compiled Program.
	ErrNoProgram = errors.New("runner: submission has no program")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = runmgr.ErrClosed
	// ErrQueueFull is returned by Submit when the waiting queue is at
	// QueueLimit.
	ErrQueueFull = runmgr.ErrQueueFull
	// ErrDuplicateID is returned by Submit when the submission's
	// caller-chosen ID is already taken.
	ErrDuplicateID = runmgr.ErrDuplicateID
)

// Config configures a Runner.
type Config struct {
	// MaxConcurrent is the maximum number of runs executing at once
	// (default 1).
	MaxConcurrent int
	// QueueLimit caps queued (not yet running) submissions; 0 means
	// unbounded.
	QueueLimit int
	// Scheduler selects the queue policy: "" or "fifo" (strict
	// submission order) or "wfq" (per-tenant weighted-fair queueing with
	// priority classes and preemption). New panics on unknown names —
	// validate user-supplied values with runmgr.SchedulerNames first.
	Scheduler string
	// Tenants configures tenant identities and admission limits, keyed
	// by tenant name. Submissions naming an unconfigured tenant run with
	// the zero-value Tenant (weight 1, priority 0, no caps).
	Tenants map[string]Tenant
	// SampleInterval is the period of Watch progress streams (default
	// 50ms).
	SampleInterval time.Duration
	// Metrics, if non-nil, receives the Runner's service metrics: run
	// outcome counters, executor figures aggregated over finished runs,
	// and live census gauges. Callers render them with
	// Registry.WriteProm (loopschedd's GET /metrics does).
	Metrics *obs.Registry
	// Watchdog configures the stuck-run watchdog; the zero value
	// disables it. When enabled, every submission is executed with
	// Diagnostics on so a stuck run's report carries the executor's
	// scheduling-state dump.
	Watchdog WatchdogConfig
	// IDPrefix prefixes runner-assigned run identifiers ("n1-" yields
	// "n1-run-0001"). Cluster nodes set their node name here so run IDs
	// are unique cluster-wide and routable to their owner.
	IDPrefix string
}

// WatchdogConfig configures stuck-run detection for every submitted
// run. A run is stuck when no scheduling progress (instances activated
// or exited, chunks claimed, iterations executed) has been observed for
// a full Interval; the diagnostic dump is then recorded on the run
// (Progress.Stuck), OnStuck fires, and — with CancelStuck — the run is
// cancelled like any other cancellation.
type WatchdogConfig struct {
	// Interval is the no-progress window; 0 disables the watchdog.
	Interval time.Duration
	// CancelStuck cancels a run once it is declared stuck.
	CancelStuck bool
	// OnStuck, if non-nil, is called each time a run is declared stuck.
	OnStuck func(id, label, diagnostic string)
}

// Submission is one run request.
type Submission struct {
	// Program is the compiled program to run (required).
	Program *repro.Program
	// Options configure the run; they are validated before enqueueing.
	Options repro.Options
	// Timeout, if positive, bounds the run's execution time. An expired
	// run drains out and finalizes as failed with
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Label is a free-form display name.
	Label string
	// ID, if non-empty, is the run identifier to use instead of a
	// runner-assigned one. The daemon's boot-time journal replay uses it
	// to re-queue runs under their original names; a duplicate ID is
	// rejected.
	ID string
	// Tenant attributes the run to a tenant for admission control,
	// fair-share scheduling and per-tenant metrics. Empty is the
	// anonymous tenant (keyless dev mode).
	Tenant string
	// CheckpointEvery, when positive, runs the program as a chain of
	// legs: each leg pauses at a checkpoint after that many chunk claims,
	// parks the snapshot on the handle (Run.Checkpoint), reports it to
	// OnSnapshot, and resumes immediately — so a live run always has a
	// recent durable snapshot without ever stopping. The claim-boundary
	// pause preserves the bit-identity contract: the chained run's
	// iteration set and totals equal an uninterrupted run's. It overrides
	// Options.CheckpointAfter and requires a checkpointable configuration
	// (cursor schemes; see Options.Checkpointable). A RequestCheckpoint
	// or preemption ends the chain at the next leg boundary exactly as it
	// would pause a CheckpointAfter run.
	CheckpointEvery int64
	// OnSnapshot, if non-nil, is called (from the run's goroutine) with
	// each periodic snapshot a CheckpointEvery chain parks — the serving
	// layer's hook for journaling restore points. Not called for the
	// final checkpoint of a pausing/preempted run (that one is the
	// terminal outcome, reported through the run state).
	OnSnapshot func(*repro.Checkpoint)
}

// Progress is one streaming snapshot of a run, sampled live from the
// executor counters while the run is in flight.
type Progress struct {
	ID      string        `json:"id"`
	Label   string        `json:"label,omitempty"`
	Tenant  string        `json:"tenant,omitempty"`
	State   string        `json:"state"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Instances counts loop instances activated so far; InstancesDone
	// counts those completed (the paper's EXIT events).
	Instances     int64 `json:"instances"`
	InstancesDone int64 `json:"instances_done"`
	// Iterations and Chunks count leaf iterations executed and low-level
	// assignments grabbed.
	Iterations int64 `json:"iterations"`
	Chunks     int64 `json:"chunks"`
	// Efficiency is live body time over accounted processor time — the
	// streaming counterpart of Result.Utilization.
	Efficiency float64 `json:"efficiency"`
	// FailedIterations counts iterations quarantined under the isolate
	// failure policy.
	FailedIterations int64 `json:"failed_iterations,omitempty"`
	// Stuck carries the watchdog's diagnostic dump while the run is
	// declared stuck (and, for a run the watchdog cancelled, after it).
	Stuck string `json:"stuck,omitempty"`
	// Error is the failure cause once the run is terminal and not done.
	Error string `json:"error,omitempty"`
}

// Runner executes submitted programs concurrently over a bounded
// worker budget.
type Runner struct {
	mgr      *runmgr.Manager
	sample   time.Duration
	met      *metrics
	tmet     *tenantMetrics
	tenants  map[string]Tenant
	watchdog WatchdogConfig

	mu      sync.Mutex
	byID    map[string]*Run
	runs    []*Run
	live    map[string][]*Run // per-tenant live handles, pruned on Submit
	tallies map[string]*tenantTally
}

// metrics aggregates run outcomes into a Config.Metrics registry. A nil
// *metrics is a valid no-op receiver, so the record path needs no
// configuration checks.
type metrics struct {
	submitted, done, failed, cancelled      *obs.Counter
	checkpointed, budgetExceeded            *obs.Counter
	iterations, instances, chunks, searches *obs.Counter
	accesses, busy                          *obs.Counter
	adaptFits, adaptSwitches                *obs.Counter

	sweeps, sweepWalked, sweepLockFailures *obs.Counter
	sweepRetests, sweepSaturated           *obs.Counter
	icbAllocs, icbReuses                   *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		submitted:  reg.Counter("runner_runs_submitted_total", "Runs accepted by Submit."),
		done:       reg.Counter("runner_runs_done_total", "Runs finished successfully."),
		failed:     reg.Counter("runner_runs_failed_total", "Runs finalized with an error (including expired timeouts)."),
		cancelled:  reg.Counter("runner_runs_cancelled_total", "Runs cancelled before completion."),
		checkpointed: reg.Counter("runner_runs_checkpointed_total",
			"Runs that paused at a checkpoint with a resumable snapshot."),
		budgetExceeded: reg.Counter("runner_runs_budget_exceeded_total",
			"Runs that exhausted their execution budget before completing."),
		iterations: reg.Counter("runner_iterations_total", "Loop iterations executed by finished runs."),
		instances:  reg.Counter("runner_instances_total", "Loop instances activated by finished runs."),
		chunks:     reg.Counter("runner_chunks_total", "Low-level iteration assignments grabbed by finished runs."),
		searches:   reg.Counter("runner_searches_total", "Task-pool SEARCH calls by finished runs."),
		accesses:   reg.Counter("runner_sync_accesses_total", "Synchronization-variable accesses by finished runs."),
		busy:       reg.Counter("runner_busy_time_total", "Summed per-processor busy time of finished runs (engine units)."),
		adaptFits: reg.Counter("runner_adapt_fits_total",
			"Adaptive-policy model fits performed by finished runs."),
		adaptSwitches: reg.Counter("runner_adapt_switches_total",
			"Adaptive-policy scheme switches performed by finished runs."),
		sweeps: reg.Counter("runner_pool_sweeps_total",
			"Task-pool SW sweeps (leading-one scans) by finished runs."),
		sweepWalked: reg.Counter("runner_pool_walked_total",
			"Task-pool lists examined across sweeps by finished runs."),
		sweepLockFailures: reg.Counter("runner_pool_lock_failures_total",
			"Task-pool list-lock acquisition failures by finished runs."),
		sweepRetests: reg.Counter("runner_pool_retests_total",
			"Task-pool SW retests that found the list emptied under the lock."),
		sweepSaturated: reg.Counter("runner_pool_saturated_total",
			"Task-pool adoption attempts that found every ICB saturated."),
		icbAllocs: reg.Counter("runner_icb_allocs_total",
			"Instance control blocks freshly allocated by finished runs."),
		icbReuses: reg.Counter("runner_icb_reuses_total",
			"Instance control blocks adopted from worker freelists by finished runs."),
	}
}

// finish folds one terminal run into the registry.
func (m *metrics) finish(res *repro.Result, err error) {
	if m == nil {
		return
	}
	switch {
	case err == nil:
		m.done.Inc()
	case errors.Is(err, repro.ErrCheckpointed), errors.Is(err, runmgr.ErrCheckpointed):
		// The job wraps the repro checkpoint error with the manager's
		// sentinel (flattening the original chain), so the fold — which
		// now happens at handle finalization — matches either.
		m.checkpointed.Inc()
	case errors.Is(err, repro.ErrBudgetExceeded):
		m.budgetExceeded.Inc()
	case errors.Is(err, context.Canceled):
		m.cancelled.Inc()
	default:
		m.failed.Inc()
	}
	if res == nil {
		return
	}
	m.iterations.Add(res.Stats.Iterations)
	m.instances.Add(res.Stats.Instances)
	m.chunks.Add(res.Stats.Chunks)
	m.searches.Add(res.Stats.Searches)
	var acc, busy int64
	for _, a := range res.Accesses {
		acc += a
	}
	for _, b := range res.Busy {
		busy += b
	}
	m.accesses.Add(acc)
	m.busy.Add(busy)
	m.adaptFits.Add(res.Stats.AdaptFits)
	m.adaptSwitches.Add(res.Stats.AdaptSwitches)
	m.sweeps.Add(res.Stats.Search.Sweeps)
	m.sweepWalked.Add(res.Stats.Search.Walked)
	m.sweepLockFailures.Add(res.Stats.Search.LockFailures)
	m.sweepRetests.Add(res.Stats.Search.Retests)
	m.sweepSaturated.Add(res.Stats.Search.Saturated)
	m.icbAllocs.Add(res.Stats.ICBAllocs)
	m.icbReuses.Add(res.Stats.ICBReuses)
}

// New returns a Runner with the given configuration.
func New(cfg Config) *Runner {
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 50 * time.Millisecond
	}
	wd := runmgr.Watchdog{
		Interval:    cfg.Watchdog.Interval,
		CancelStuck: cfg.Watchdog.CancelStuck,
	}
	if cfg.Watchdog.OnStuck != nil {
		onStuck := cfg.Watchdog.OnStuck
		wd.OnStuck = func(r *runmgr.Run, diagnostic string) {
			onStuck(r.ID(), r.Label(), diagnostic)
		}
	}
	sched, err := runmgr.NewScheduler(cfg.Scheduler)
	if err != nil {
		// A scheduler name reaches here from code, not users: loopschedd
		// validates its -scheduler flag before constructing the Runner.
		panic(err)
	}
	rn := &Runner{
		mgr: runmgr.New(runmgr.Config{
			MaxConcurrent: cfg.MaxConcurrent,
			QueueLimit:    cfg.QueueLimit,
			Scheduler:     sched,
			Watchdog:      wd,
			IDPrefix:      cfg.IDPrefix,
		}),
		sample:   cfg.SampleInterval,
		watchdog: cfg.Watchdog,
		tenants:  cfg.Tenants,
		byID:     map[string]*Run{},
		live:     map[string][]*Run{},
		tallies:  map[string]*tenantTally{},
	}
	if cfg.Metrics != nil {
		rn.met = newMetrics(cfg.Metrics)
		rn.tmet = newTenantMetrics(cfg.Metrics)
		mgr := rn.mgr
		cfg.Metrics.Gauge("runner_queue_depth", "Submissions waiting to start.",
			func() float64 { return float64(mgr.Stats().QueueDepth) })
		cfg.Metrics.Gauge("runner_running", "Runs currently executing.",
			func() float64 { return float64(mgr.Stats().Running) })
		cfg.Metrics.Gauge("runner_preempted", "Preemption requeues performed by the scheduler.",
			func() float64 { return float64(mgr.Stats().Preempted) })
	}
	return rn
}

// Submit validates and enqueues a run. It returns the run's handle, or
// a validation error (errors.Is-able against the repro sentinels) /
// queue error without enqueueing anything.
func (rn *Runner) Submit(sub Submission) (*Run, error) {
	if sub.Program == nil {
		return nil, ErrNoProgram
	}
	if err := sub.Options.Validate(); err != nil {
		return nil, err
	}
	r := &Run{sample: rn.sample}
	opts := sub.Options
	userObserve := opts.Observe
	opts.Observe = func(lv repro.Live) {
		r.probe.Store(&lv)
		if userObserve != nil {
			userObserve(lv)
		}
	}
	checkpointable := opts.Checkpointable || opts.CheckpointAfter > 0 ||
		opts.Resume != nil || sub.CheckpointEvery > 0
	ten := rn.tenants[sub.Tenant]
	job := runmgr.Job{
		Label:    sub.Label,
		Tenant:   sub.Tenant,
		Weight:   ten.Weight,
		Priority: ten.Priority,
		Run: func(ctx context.Context) (any, error) {
			// A fresh attempt consumes any yield request from a previous
			// one: the request targeted the attempt that already paused.
			r.yield.Store(false)
			attempt := opts
			if ck := r.ckpt.Load(); ck != nil {
				// Redispatch after a preemption (or the next leg of a
				// CheckpointEvery chain): resume from the parked snapshot so
				// no prior work is repeated. Verify is dropped for resumed
				// attempts — the trace cannot observe pre-checkpoint
				// iterations.
				attempt.Resume = ck
				attempt.Verify = false
			}
			if sub.Timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, sub.Timeout)
				defer cancel()
			}
			for {
				if sub.CheckpointEvery > 0 {
					attempt.CheckpointAfter = sub.CheckpointEvery
				}
				res, err := sub.Program.RunContext(ctx, attempt)
				var cke *repro.CheckpointedError
				if errors.As(err, &cke) {
					// Keep the snapshot on the handle. A plain CheckpointAfter
					// run (or a chain asked to yield — pause request,
					// preemption, cancellation) surfaces the checkpoint as its
					// outcome: the manager either requeues (preemption in
					// flight — the next attempt resumes from the snapshot) or
					// finalizes as checkpointed (terminal and resumable, not a
					// failure). A chain leg otherwise journals its snapshot and
					// resumes immediately.
					r.ckpt.Store(cke.Checkpoint)
					if sub.CheckpointEvery <= 0 || r.yield.Load() || ctx.Err() != nil {
						return nil, fmt.Errorf("%v: %w", err, runmgr.ErrCheckpointed)
					}
					r.snapshots.Add(1)
					if sub.OnSnapshot != nil {
						sub.OnSnapshot(cke.Checkpoint)
					}
					attempt.Resume = cke.Checkpoint
					attempt.Verify = false
					continue
				}
				var be *repro.BudgetExceededError
				if errors.As(err, &be) && be.Checkpoint != nil {
					// Budget exhaustion on a checkpointable run: park the
					// snapshot so a client can resubmit it with a fresh budget.
					r.ckpt.Store(be.Checkpoint)
				}
				return res, err
			}
		},
		Sample: func() any {
			if lv := r.probe.Load(); lv != nil {
				return (*lv).LiveStats()
			}
			return nil
		},
	}
	if checkpointable {
		// Cooperative preemption: a checkpointable run yields through a
		// snapshot, preserving its exact progress across the requeue.
		// RequestCheckpoint reports false before the probe exists; the
		// manager then falls back to cancelling the attempt.
		job.Preempt = func() bool { return r.RequestCheckpoint() }
	}
	if rn.watchdog.Interval > 0 {
		// A stuck-run report is only useful with the executor's
		// scheduling-state dump, so watched runs track live instances —
		// and carry a flight recorder, so the dump ends with the last
		// scheduling events before the stall.
		opts.Diagnostics = true
		if opts.FlightRecorder <= 0 {
			opts.FlightRecorder = watchdogFlightEvents
		}
		job.Heartbeat = func() int64 {
			lv := r.probe.Load()
			if lv == nil {
				return 0
			}
			sn := (*lv).LiveStats()
			// Any scheduling progress counts: a long-running chunk still
			// advances Iterations, a drain still advances Exits.
			return sn.Instances + sn.Exits + sn.Chunks + sn.Iterations
		}
		job.Diagnose = func() string {
			if lv := r.probe.Load(); lv != nil {
				if d, ok := (*lv).(core.Diagnoser); ok {
					return d.Diagnose()
				}
			}
			return "(no probe: run not started)"
		}
	}
	name := tenantName(sub.Tenant)
	rn.mu.Lock()
	if err := rn.admitLocked(sub.Tenant); err != nil {
		rn.tally(name).rejected++
		rn.mu.Unlock()
		if rn.tmet != nil {
			rn.tmet.rejected.With(name).Inc()
		}
		return nil, err
	}
	// The manager submission happens under rn.mu so concurrent Submits
	// cannot both pass the tenant's admission check (lock order is
	// rn.mu → mgr.mu, matching every other path).
	h, err := rn.mgr.SubmitID(sub.ID, job)
	if err != nil {
		rn.mu.Unlock()
		return nil, err
	}
	r.h = h
	rn.byID[h.ID()] = r
	rn.runs = append(rn.runs, r)
	rn.live[sub.Tenant] = append(rn.live[sub.Tenant], r)
	rn.tally(name).submitted++
	rn.mu.Unlock()
	if rn.met != nil {
		rn.met.submitted.Inc()
	}
	if rn.tmet != nil {
		rn.tmet.submitted.With(name).Inc()
	}
	// Outcomes fold into the registries exactly once per run, when the
	// handle finalizes — not per attempt, so a preempted-and-resumed run
	// counts once with its final result.
	go func() {
		<-h.Done()
		v, err := h.Result()
		res, _ := v.(*repro.Result)
		rn.met.finish(res, err)
		rn.tenantFinish(sub.Tenant, res, err, int64(h.Attempts()-1))
	}()
	return r, nil
}

// Get returns the run with the given ID.
func (rn *Runner) Get(id string) (*Run, bool) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	r, ok := rn.byID[id]
	return r, ok
}

// Runs returns all runs in submission order.
func (rn *Runner) Runs() []*Run {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	out := make([]*Run, len(rn.runs))
	copy(out, rn.runs)
	return out
}

// Stats re-exports the run-manager census (queue depth, per-state run
// counts, worker budget), for health and monitoring endpoints.
type Stats = runmgr.Stats

// Stats returns the current run census.
func (rn *Runner) Stats() Stats { return rn.mgr.Stats() }

// Close stops accepting submissions and cancels every live run.
func (rn *Runner) Close() { rn.mgr.Close() }

// Drain blocks until every submitted run is terminal or ctx expires.
func (rn *Runner) Drain(ctx context.Context) error { return rn.mgr.Drain(ctx) }

// watchdogFlightEvents is the per-processor flight-recorder capacity the
// watchdog forces onto watched runs that did not request their own.
const watchdogFlightEvents = 64

// Run is the handle of one submitted program run.
type Run struct {
	h      *runmgr.Run
	sample time.Duration
	probe  atomic.Pointer[repro.Live]
	ckpt   atomic.Pointer[repro.Checkpoint]
	// yield distinguishes "someone wants this run to stop at its next
	// checkpoint" (pause request, preemption) from the chain-internal
	// checkpoints a CheckpointEvery run takes and rides through.
	yield atomic.Bool
	// snapshots counts the periodic snapshots a CheckpointEvery chain
	// has parked (not the terminal checkpoint of a paused run).
	snapshots atomic.Int64
}

// ID returns the runner-assigned identifier.
func (r *Run) ID() string { return r.h.ID() }

// Label returns the submission label.
func (r *Run) Label() string { return r.h.Label() }

// State returns the current lifecycle state.
func (r *Run) State() State { return r.h.State() }

// Done returns a channel closed when the run is terminal.
func (r *Run) Done() <-chan struct{} { return r.h.Done() }

// Started returns a channel closed when the run is dispatched out of
// the queue. A run cancelled while still queued never signals it; wait
// on Done alongside it.
func (r *Run) Started() <-chan struct{} { return r.h.Started() }

// Cancel requests cancellation; the run finalizes with context.Canceled
// once its processors drain out (immediately if it was still queued).
func (r *Run) Cancel() { r.h.Cancel() }

// RequestCheckpoint asks a running checkpointable run to pause at its
// next claim boundary and capture a snapshot. It reports false when the
// run has not started, has no probe yet, or was not submitted with
// Options.Checkpointable (or CheckpointAfter/Resume); the pause itself
// completes asynchronously — wait on Done, then read Checkpoint.
func (r *Run) RequestCheckpoint() bool {
	lv := r.probe.Load()
	if lv == nil {
		return false
	}
	ck, ok := (*lv).(core.Checkpointer)
	if !ok {
		return false
	}
	// Raise yield before the core request so a CheckpointEvery chain
	// cannot observe the resulting pause and mistake it for one of its
	// own periodic checkpoints.
	r.yield.Store(true)
	if ck.RequestCheckpoint() {
		return true
	}
	r.yield.Store(false)
	return false
}

// Checkpoint returns the run's parked snapshot: set when the run
// finalized as StateCheckpointed, for a checkpointable run that failed
// with repro.ErrBudgetExceeded (resubmit it with Options.Resume and a
// fresh budget), and — continuously, while the run is still live — the
// latest periodic snapshot of a CheckpointEvery chain. Nil otherwise.
func (r *Run) Checkpoint() *repro.Checkpoint { return r.ckpt.Load() }

// Snapshots returns how many periodic snapshots a CheckpointEvery
// chain has parked so far (0 for unchained runs).
func (r *Run) Snapshots() int64 { return r.snapshots.Load() }

// Tenant returns the submission's tenant ("" for anonymous work).
func (r *Run) Tenant() string { return r.h.Tenant() }

// Times returns when the run was submitted, started and finished; zero
// times for transitions that have not happened. A preempted run's start
// time is its latest dispatch.
func (r *Run) Times() (submitted, started, finished time.Time) { return r.h.Times() }

// Result returns the run's outcome once terminal. While the run is
// live it returns runmgr.ErrNotFinished; a cancelled run returns
// context.Canceled.
func (r *Run) Result() (*repro.Result, error) {
	v, err := r.h.Result()
	if err != nil {
		return nil, err
	}
	res, ok := v.(*repro.Result)
	if !ok {
		return nil, fmt.Errorf("runner: run %s produced %T, not a result", r.h.ID(), v)
	}
	return res, nil
}

// Wait blocks until the run is terminal (returning its outcome) or ctx
// expires (returning ctx's error without affecting the run).
func (r *Run) Wait(ctx context.Context) (*repro.Result, error) {
	if _, err := r.h.Wait(ctx); err != nil {
		return nil, err
	}
	return r.Result()
}

// Progress samples the run's live counters into one snapshot. It is
// safe to call at any time from any goroutine.
func (r *Run) Progress() Progress {
	p := Progress{ID: r.h.ID(), Label: r.h.Label(), Tenant: r.Tenant()}
	st := r.h.State()
	p.State = st.String()
	_, started, finished := r.h.Times()
	if !started.IsZero() {
		end := finished
		if end.IsZero() {
			end = time.Now()
		}
		p.Elapsed = end.Sub(started)
	}
	if lv := r.probe.Load(); lv != nil {
		sn := (*lv).LiveStats()
		p.Instances = sn.Instances
		p.InstancesDone = sn.Exits
		p.Iterations = sn.Iterations
		p.Chunks = sn.Chunks
		p.Efficiency = sn.Efficiency()
		p.FailedIterations = sn.FailedIterations
	}
	if diag, stuck := r.h.Stuck(); stuck {
		p.Stuck = diag
	}
	if st.Terminal() && st != StateDone {
		if _, err := r.h.Result(); err != nil {
			p.Error = err.Error()
		}
	}
	return p
}

// Watch streams progress snapshots every SampleInterval until the run
// is terminal or ctx expires. The channel carries a final snapshot for
// the terminal state, then closes. Intermediate snapshots are dropped
// rather than buffered when the receiver falls behind.
func (r *Run) Watch(ctx context.Context) <-chan Progress {
	ch := make(chan Progress, 1)
	go func() {
		defer close(ch)
		t := time.NewTicker(r.sample)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-r.h.Done():
				select {
				case ch <- r.Progress():
				case <-ctx.Done():
				}
				return
			case <-t.C:
				select {
				case ch <- r.Progress():
				default:
				}
			}
		}
	}()
	return ch
}
