package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// TestTenantAdmission pins the per-tenant admission contract: MaxQueued
// rejects waiting submissions with ErrTenantQueueFull, MaxInflight
// rejects live ones with ErrTenantInflight, other tenants are
// unaffected, and a slot freed by completion re-admits.
func TestTenantAdmission(t *testing.T) {
	rn := New(Config{
		MaxConcurrent: 1,
		Tenants: map[string]Tenant{
			"alpha": {MaxQueued: 1, MaxInflight: 2},
		},
	})
	defer rn.Close()

	gate := make(chan struct{})
	submit := func(tenant string) (*Run, error) {
		return rn.Submit(Submission{
			Program: gatedProgram(t, 8, gate),
			Options: repro.Options{Procs: 2},
			Tenant:  tenant,
		})
	}
	first, err := submit("alpha") // dispatches (running)
	if err != nil {
		t.Fatal(err)
	}
	<-first.Started()
	if _, err := submit("alpha"); err != nil { // queued: 1 of 1
		t.Fatal(err)
	}
	if _, err := submit("alpha"); !errors.Is(err, ErrTenantInflight) {
		t.Fatalf("third alpha submission: %v, want ErrTenantInflight", err)
	}
	if _, err := submit("beta"); err != nil { // other tenants unaffected
		t.Fatalf("beta submission rejected: %v", err)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rn.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := submit("alpha"); err != nil { // slots freed: re-admitted
		t.Fatalf("post-drain alpha submission rejected: %v", err)
	}
	rows := rn.TenantStats()
	byName := map[string]TenantStats{}
	for _, r := range rows {
		byName[r.Tenant] = r
	}
	if a := byName["alpha"]; a.Rejected != 1 || a.Submitted != 3 {
		t.Errorf("alpha census = %+v, want 3 submitted, 1 rejected", a)
	}
}

// TestTenantQueueCap: MaxQueued alone (no inflight cap) sheds only the
// waiting excess.
func TestTenantQueueCap(t *testing.T) {
	rn := New(Config{
		MaxConcurrent: 1,
		Tenants:       map[string]Tenant{"alpha": {MaxQueued: 1}},
	})
	defer rn.Close()
	gate := make(chan struct{})
	defer close(gate)
	first, err := rn.Submit(Submission{
		Program: gatedProgram(t, 8, gate), Options: repro.Options{Procs: 2}, Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	<-first.Started()
	if _, err := rn.Submit(Submission{
		Program: finiteProgram(t, 8), Options: repro.Options{Procs: 2}, Tenant: "alpha"}); err != nil {
		t.Fatal(err)
	}
	_, err = rn.Submit(Submission{
		Program: finiteProgram(t, 8), Options: repro.Options{Procs: 2}, Tenant: "alpha"})
	if !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("overflow submission: %v, want ErrTenantQueueFull", err)
	}
}

// TestWFQFairnessIterations is the fairness regression test on the
// virtual engine: two backlogged tenants with 3:1 weights submit
// identical programs through a wfq Runner with one worker slot; over
// the completed prefix, their executed-iteration shares must match the
// weights within ε. Runs execute deterministically on the virtual
// engine, so the only nondeterminism is dispatch completion order.
func TestWFQFairnessIterations(t *testing.T) {
	rn := New(Config{
		MaxConcurrent: 1,
		Scheduler:     "wfq",
		Tenants: map[string]Tenant{
			"gold":   {Weight: 3},
			"bronze": {Weight: 1},
		},
	})
	defer rn.Close()

	// One long-running anchor keeps the slot busy while both tenants
	// queue their backlog, so the scheduler sees sustained contention.
	gate := make(chan struct{})
	anchor, err := rn.Submit(Submission{
		Program: gatedProgram(t, 4, gate), Options: repro.Options{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	<-anchor.Started()

	const each = 12
	const iters = 40
	var runs []*Run
	for i := 0; i < each; i++ {
		for _, tenant := range []string{"gold", "bronze"} {
			r, err := rn.Submit(Submission{
				Program: finiteProgram(t, iters),
				Options: repro.Options{Procs: 4, Scheme: "gss"},
				Tenant:  tenant,
				Label:   fmt.Sprintf("%s-%d", tenant, i),
			})
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, r)
		}
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := rn.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Everything eventually completes (work conservation); fairness shows
	// in the dispatch ORDER. Reconstruct it from the per-run start times
	// and check the 3:1 iteration share over the first schedule windows.
	sort := func(rs []*Run) {
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0; j-- {
				_, si, _ := rs[j].h.Times()
				_, sp, _ := rs[j-1].h.Times()
				if si.Before(sp) {
					rs[j], rs[j-1] = rs[j-1], rs[j]
				} else {
					break
				}
			}
		}
	}
	sort(runs)
	window := 16 // a multiple of the 3:1 schedule period (4)
	gold, bronze := int64(0), int64(0)
	for _, r := range runs[:window] {
		res, err := r.Result()
		if err != nil {
			t.Fatalf("run %s: %v", r.ID(), err)
		}
		switch r.Tenant() {
		case "gold":
			gold += res.Stats.Iterations
		case "bronze":
			bronze += res.Stats.Iterations
		}
	}
	if gold+bronze != int64(window)*iters {
		t.Fatalf("window executed %d iterations, want %d", gold+bronze, int64(window)*iters)
	}
	ratio := float64(gold) / float64(bronze)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("iteration share gold:bronze = %d:%d (ratio %.2f), want 3:1 within ε", gold, bronze, ratio)
	}
}

// TestPreemptResumeExactIterations is the preemption-transparency
// acceptance test: a checkpointable low-priority run is preempted by a
// high-priority submission, requeues with its snapshot, resumes on
// redispatch, and its final Result reports the exact iteration total of
// an uninterrupted run — nothing lost at the preemption, nothing
// repeated (the kernel's resume conformance suites pin the multiset;
// cumulative Stats pin it end-to-end here).
func TestPreemptResumeExactIterations(t *testing.T) {
	rn := New(Config{
		MaxConcurrent: 1,
		Scheduler:     "wfq",
		Tenants: map[string]Tenant{
			"bulk":   {Priority: 0},
			"urgent": {Priority: 5},
		},
	})
	defer rn.Close()

	const bound = 600
	started := make(chan struct{})
	var once bool
	low, err := rn.Submit(Submission{
		Program: finiteProgram(t, bound),
		Options: repro.Options{
			Procs:          2,
			Scheme:         "ss",
			Checkpointable: true,
			Observe: func(repro.Live) {
				if !once {
					once = true
					close(started)
				}
			},
		},
		Tenant: "bulk",
		Label:  "bulk-work",
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	high, err := rn.Submit(Submission{
		Program: finiteProgram(t, 40),
		Options: repro.Options{Procs: 2},
		Tenant:  "urgent",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := high.Wait(ctx); err != nil {
		t.Fatalf("urgent run: %v", err)
	}
	res, err := low.Wait(ctx)
	if err != nil {
		t.Fatalf("preempted run: %v", err)
	}
	if res.Stats.Iterations != bound {
		t.Errorf("preempted+resumed run executed %d iterations, want exactly %d", res.Stats.Iterations, bound)
	}
	if st := rn.Stats(); st.Preempted > 0 {
		// Preemption landed (it can race completion of a short run; the
		// iteration exactness above must hold either way).
		if got := low.h.Attempts(); got < 2 {
			t.Errorf("preempted run has %d attempt(s), want >= 2", got)
		}
	}
}

// TestTenantMetricsRendered: the per-tenant counter families render in
// the Prometheus text format with one HELP/TYPE block per bare name and
// one labeled sample per tenant.
func TestTenantMetricsRendered(t *testing.T) {
	reg := obs.NewRegistry()
	rn := New(Config{MaxConcurrent: 2, Metrics: reg})
	defer rn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tenant := range []string{"alpha", ""} {
		r, err := rn.Submit(Submission{
			Program: finiteProgram(t, 16),
			Options: repro.Options{Procs: 2},
			Tenant:  tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// The metrics fold asynchronously on handle finalization.
	deadline := time.Now().Add(10 * time.Second)
	var text string
	for {
		var sb strings.Builder
		reg.WriteProm(&sb)
		text = sb.String()
		if strings.Contains(text, `runner_tenant_runs_done_total{tenant="alpha"} 1`) &&
			strings.Contains(text, `runner_tenant_runs_done_total{tenant="anonymous"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant metrics never rendered; got:\n%s", text)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := strings.Count(text, "# TYPE runner_tenant_runs_done_total counter"); n != 1 {
		t.Errorf("HELP/TYPE block rendered %d times, want once", n)
	}
	if !strings.Contains(text, `runner_tenant_iterations_total{tenant="alpha"} 16`) {
		t.Errorf("missing per-tenant iteration sample:\n%s", text)
	}
}

// TestBudgetThroughRunner: a budgeted submission surfaces the typed
// error through the handle, counts in the budget metric, and — when
// checkpointable — parks a resumable snapshot that a resubmission
// completes from.
func TestBudgetThroughRunner(t *testing.T) {
	reg := obs.NewRegistry()
	rn := New(Config{MaxConcurrent: 1, Metrics: reg})
	defer rn.Close()
	prog := finiteProgram(t, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	r, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{
			Procs:            2,
			BudgetIterations: 20,
			Checkpointable:   true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(ctx); !errors.Is(err, repro.ErrBudgetExceeded) {
		t.Fatalf("budgeted run returned %v, want ErrBudgetExceeded", err)
	}
	ck := r.Checkpoint()
	if ck == nil {
		t.Fatal("budget-exceeded checkpointable run parked no snapshot")
	}
	rest, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{Procs: 2, Resume: ck},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rest.Wait(ctx)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Stats.Iterations != 64 {
		t.Errorf("resumed run's cumulative iterations = %d, want 64", res.Stats.Iterations)
	}
}
