package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// finiteProgram compiles a flat Doall of the given bound.
func finiteProgram(t *testing.T, bound int64) *repro.Program {
	t.Helper()
	nest := repro.MustBuild(func(b *repro.B) {
		b.DoallLeaf("L", repro.Const(bound), func(e repro.Env, iv repro.IVec, j int64) {
			e.Work(20)
		})
	})
	prog, err := repro.Compile(nest)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// endlessProgram compiles a Doall far too large to finish in test time.
func endlessProgram(t *testing.T) *repro.Program {
	return finiteProgram(t, 1<<40)
}

// gatedProgram compiles a Doall whose every iteration first waits for
// gate to close, so the run cannot make progress until released.
func gatedProgram(t *testing.T, bound int64, gate <-chan struct{}) *repro.Program {
	t.Helper()
	nest := repro.MustBuild(func(b *repro.B) {
		b.DoallLeaf("G", repro.Const(bound), func(e repro.Env, iv repro.IVec, j int64) {
			<-gate
			e.Work(20)
		})
	})
	prog, err := repro.Compile(nest)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestConcurrentRuns is the headline acceptance test: 8 runs through
// one Runner, provably in flight simultaneously (every iteration body
// blocks until all 8 have started), each completing with its own
// correct Result.
func TestConcurrentRuns(t *testing.T) {
	const n = 8
	rn := New(Config{MaxConcurrent: n})
	defer rn.Close()

	gate := make(chan struct{})
	var startedRuns atomic.Int64
	var runs []*Run
	bounds := make([]int64, n)
	for i := 0; i < n; i++ {
		bounds[i] = int64(100 + 10*i)
		r, err := rn.Submit(Submission{
			Program: gatedProgram(t, bounds[i], gate),
			Options: repro.Options{
				Procs:  4,
				Scheme: "gss",
				Observe: func(repro.Live) {
					if startedRuns.Add(1) == n {
						close(gate)
					}
				},
			},
			Label: fmt.Sprintf("concurrent-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range runs {
		res, err := r.Wait(ctx)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Stats.Iterations != bounds[i] {
			t.Errorf("run %d executed %d iterations, want %d", i, res.Stats.Iterations, bounds[i])
		}
		if res.Makespan <= 0 || res.Procs != 4 {
			t.Errorf("run %d: implausible result %+v", i, res)
		}
		if st := r.State(); st != StateDone {
			t.Errorf("run %d state = %v, want done", i, st)
		}
	}
	if got := startedRuns.Load(); got != n {
		t.Errorf("%d runs started, want %d", got, n)
	}
}

// TestCancelMidRun verifies the second acceptance property: a
// cancelled run returns context.Canceled within one progress-sampling
// interval, and the Runner keeps serving afterwards.
func TestCancelMidRun(t *testing.T) {
	const sample = 500 * time.Millisecond
	rn := New(Config{MaxConcurrent: 2, SampleInterval: sample})
	defer rn.Close()

	r, err := rn.Submit(Submission{Program: endlessProgram(t), Label: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	// Let it demonstrably make progress first.
	deadline := time.After(10 * time.Second)
	for r.Progress().Iterations == 0 {
		select {
		case <-deadline:
			t.Fatalf("run never progressed: %+v", r.Progress())
		case <-time.After(time.Millisecond):
		}
	}

	begin := time.Now()
	r.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := r.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(begin); d > sample {
		t.Errorf("cancellation took %v, over one sampling interval (%v)", d, sample)
	}
	if st := r.State(); st != StateCancelled {
		t.Errorf("state = %v, want cancelled", st)
	}
	p := r.Progress()
	if p.Error == "" || p.State != "cancelled" {
		t.Errorf("terminal progress = %+v, want cancelled with error", p)
	}

	// The Runner must remain usable for subsequent submissions.
	next, err := rn.Submit(Submission{Program: finiteProgram(t, 500)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := next.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 500 {
		t.Errorf("follow-up run executed %d iterations, want 500", res.Stats.Iterations)
	}
}

// TestDeadlineBothEngines verifies Timeout expiry surfaces as
// context.DeadlineExceeded on the virtual and the real engine.
func TestDeadlineBothEngines(t *testing.T) {
	for _, engine := range []repro.EngineKind{repro.EngineVirtual, repro.EngineReal} {
		t.Run(string(engine), func(t *testing.T) {
			rn := New(Config{MaxConcurrent: 1})
			defer rn.Close()
			r, err := rn.Submit(Submission{
				Program: endlessProgram(t),
				Options: repro.Options{Procs: 4, Engine: engine},
				Timeout: 30 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if _, err := r.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if st := r.State(); st != StateFailed {
				t.Errorf("state = %v, want failed", st)
			}
		})
	}
}

// TestValidationUpFront verifies bad options are rejected with the repro
// sentinels before anything is enqueued.
func TestValidationUpFront(t *testing.T) {
	rn := New(Config{MaxConcurrent: 1})
	defer rn.Close()
	prog := finiteProgram(t, 10)
	cases := []struct {
		sub  Submission
		want error
	}{
		{Submission{}, ErrNoProgram},
		{Submission{Program: prog, Options: repro.Options{Scheme: "wrong"}}, repro.ErrBadScheme},
		{Submission{Program: prog, Options: repro.Options{Engine: "abacus"}}, repro.ErrUnknownEngine},
		{Submission{Program: prog, Options: repro.Options{Pool: "heap"}}, repro.ErrUnknownPool},
		{Submission{Program: prog, Options: repro.Options{Scheme: "tfss:1:2"}}, repro.ErrBadScheme},
	}
	for _, c := range cases {
		if _, err := rn.Submit(c.sub); !errors.Is(err, c.want) {
			t.Errorf("Submit(%+v) err = %v, want %v", c.sub.Options, err, c.want)
		}
	}
	if n := len(rn.Runs()); n != 0 {
		t.Errorf("%d runs enqueued by invalid submissions", n)
	}
}

// TestWatchStreams consumes a Watch stream and checks it advances and
// terminates with the final state.
func TestWatchStreams(t *testing.T) {
	rn := New(Config{MaxConcurrent: 1, SampleInterval: 5 * time.Millisecond})
	defer rn.Close()
	r, err := rn.Submit(Submission{Program: finiteProgram(t, 200000)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var got []Progress
	for p := range r.Watch(ctx) {
		got = append(got, p)
	}
	if len(got) == 0 {
		t.Fatal("watch stream carried no snapshots")
	}
	last := got[len(got)-1]
	if last.State != "done" || last.Error != "" {
		t.Errorf("final snapshot = %+v, want done", last)
	}
	if last.Iterations != 200000 {
		t.Errorf("final iterations = %d, want 200000", last.Iterations)
	}
	if last.Efficiency <= 0 || last.Efficiency > 1 {
		t.Errorf("final efficiency = %v, want in (0,1]", last.Efficiency)
	}
}

// TestNoGoroutineLeak is the regression test that cancelled and
// completed runs leave no goroutines behind: watcher goroutines are
// reaped, engine workers drain out, manager slots are released.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	rn := New(Config{MaxConcurrent: 4, SampleInterval: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	doomed, err := rn.Submit(Submission{Program: endlessProgram(t), Options: repro.Options{Engine: repro.EngineReal}})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := rn.Submit(Submission{Program: finiteProgram(t, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fine.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	doomed.Cancel()
	if _, err := doomed.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rn.Close()
	if err := rn.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Give exiting goroutines a moment to unwind, then compare.
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		select {
		case <-deadline:
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		case <-time.After(10 * time.Millisecond):
		}
	}
}
