package runner

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro"
)

// TestCheckpointEveryChainCompletes pins the chained-checkpoint
// contract: a CheckpointEvery run finishes with exactly the same final
// statistics as an uninterrupted run, having parked a durable snapshot
// at every k-claim boundary along the way.
func TestCheckpointEveryChainCompletes(t *testing.T) {
	rn := New(Config{MaxConcurrent: 2})
	defer rn.Close()
	prog := finiteProgram(t, 64)

	ref, err := rn.Submit(Submission{Program: prog, Options: repro.Options{Procs: 4, Scheme: "gss"}})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []*repro.Checkpoint
	r, err := rn.Submit(Submission{
		Program:         prog,
		Options:         repro.Options{Procs: 4, Scheme: "gss"},
		CheckpointEvery: 4,
		OnSnapshot: func(ck *repro.Checkpoint) {
			mu.Lock()
			seen = append(seen, ck)
			mu.Unlock()
		},
		Label: "chained",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Wait(context.Background())
	if err != nil {
		t.Fatalf("chained run: %v", err)
	}
	if st := r.State(); st != StateDone {
		t.Fatalf("state = %v, want done", st)
	}
	f, g := refRes.Stats, got.Stats
	if g.Iterations != f.Iterations || g.Chunks != f.Chunks || g.Instances != f.Instances ||
		g.Exits != f.Exits {
		t.Errorf("chained stats %+v\nuninterrupted %+v", g, f)
	}
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n == 0 {
		t.Fatal("chain parked no periodic snapshots")
	}
	if int64(n) != r.Snapshots() {
		t.Errorf("OnSnapshot fired %d times, Snapshots() = %d", n, r.Snapshots())
	}
	for i, ck := range seen {
		if ck == nil || ck.Snapshot == nil || len(ck.Snapshot.ICBs) == 0 {
			t.Fatalf("snapshot %d is not resumable: %+v", i, ck)
		}
	}

	// Every intermediate snapshot is independently resumable: restoring
	// the last one completes with the reference totals.
	res, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{Procs: 4, Scheme: "gss", Resume: seen[n-1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := res.Wait(context.Background())
	if err != nil {
		t.Fatalf("resume from chain snapshot: %v", err)
	}
	if rres.Stats.Iterations != f.Iterations || rres.Stats.Chunks != f.Chunks {
		t.Errorf("resume from chain snapshot: %+v, want %+v", rres.Stats, f)
	}
}

// TestCheckpointEveryYieldsToPauseRequest: a RequestCheckpoint on a
// chained run must stop the chain (state checkpointed, snapshot
// parked), not be swallowed as a periodic checkpoint.
func TestCheckpointEveryYieldsToPauseRequest(t *testing.T) {
	rn := New(Config{MaxConcurrent: 1})
	defer rn.Close()
	started := make(chan struct{})
	var once sync.Once
	r, err := rn.Submit(Submission{
		Program: finiteProgram(t, 1<<30),
		Options: repro.Options{
			Procs: 4, Engine: repro.EngineReal,
			Observe: func(repro.Live) { once.Do(func() { close(started) }) },
		},
		CheckpointEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}
	for !r.RequestCheckpoint() {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-r.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("chained run did not yield to the pause request")
	}
	if st := r.State(); st != StateCheckpointed {
		t.Fatalf("state = %v, want checkpointed", st)
	}
	if ck := r.Checkpoint(); ck == nil || ck.Snapshot == nil {
		t.Fatal("paused chain has no snapshot")
	}
}

// TestCheckpointEveryPreemption: a chained run evicted by a
// higher-priority submission yields through a snapshot, requeues, and
// still finishes with uninterrupted totals.
func TestCheckpointEveryPreemption(t *testing.T) {
	rn := New(Config{MaxConcurrent: 1, Scheduler: "wfq", Tenants: map[string]Tenant{
		"gold": {Priority: 10},
	}})
	defer rn.Close()
	const bound = 600

	started := make(chan struct{})
	var once sync.Once
	low, err := rn.Submit(Submission{
		Program: finiteProgram(t, bound),
		Options: repro.Options{
			Procs: 2, Scheme: "ss",
			Observe: func(repro.Live) { once.Do(func() { close(started) }) },
		},
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	high, err := rn.Submit(Submission{
		Program: finiteProgram(t, 40),
		Options: repro.Options{Procs: 2},
		Tenant:  "gold",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := high.Wait(ctx); err != nil {
		t.Fatalf("preemptor: %v", err)
	}
	got, err := low.Wait(ctx)
	if err != nil {
		t.Fatalf("preempted chain: %v", err)
	}
	if got.Stats.Iterations != bound {
		t.Errorf("preempted chain executed %d iterations, want exactly %d", got.Stats.Iterations, bound)
	}
	if st := rn.Stats(); st.Preempted > 0 {
		// Preemption landed (it can race a fast chain's completion; the
		// exactness above must hold either way).
		if low.h.Attempts() < 2 {
			t.Errorf("preempted chain has %d attempt(s), want >= 2", low.h.Attempts())
		}
	}
}
