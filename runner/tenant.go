package runner

import (
	"errors"
	"sort"

	"repro"
	"repro/internal/obs"
)

// Tenant admission errors. A serving frontend maps both to HTTP 429.
var (
	// ErrTenantQueueFull reports a submission rejected because the
	// tenant's MaxQueued runs are already waiting.
	ErrTenantQueueFull = errors.New("runner: tenant queue limit reached")
	// ErrTenantInflight reports a submission rejected because the tenant
	// already has MaxInflight live (queued or running) runs.
	ErrTenantInflight = errors.New("runner: tenant inflight limit reached")
)

// Tenant is one tenant's scheduling identity and admission limits.
// The zero value is the default tenant: weight 1, priority 0, no caps.
type Tenant struct {
	// Weight scales the tenant's fair share under the wfq scheduler
	// (0 means 1). FIFO ignores it.
	Weight int `json:"weight,omitempty"`
	// Priority is the tenant's scheduling class under wfq: larger values
	// dispatch first and may preempt strictly lower running runs.
	Priority int `json:"priority,omitempty"`
	// MaxQueued caps the tenant's waiting submissions; exceeding it
	// rejects with ErrTenantQueueFull. 0 is unbounded.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxInflight caps the tenant's live (queued + running) runs;
	// exceeding it rejects with ErrTenantInflight. 0 is unbounded.
	MaxInflight int `json:"max_inflight,omitempty"`
}

// tenantName normalizes the metrics/census key for a submission tenant.
func tenantName(t string) string {
	if t == "" {
		return "anonymous"
	}
	return t
}

// tenantTally is one tenant's lifetime outcome tally, guarded by rn.mu.
type tenantTally struct {
	submitted, done, failed, rejected, preempted int64
	iterations                                   int64
}

// tenantMetrics is the labeled-counter mirror of the tallies, rendered
// into /metrics; nil when the Runner has no registry.
type tenantMetrics struct {
	submitted, done, failed, rejected *obs.CounterVec
	iterations                        *obs.CounterVec
}

func newTenantMetrics(reg *obs.Registry) *tenantMetrics {
	return &tenantMetrics{
		submitted: reg.CounterVec("runner_tenant_runs_submitted_total",
			"Runs accepted by Submit, by tenant.", "tenant"),
		done: reg.CounterVec("runner_tenant_runs_done_total",
			"Runs finished successfully, by tenant.", "tenant"),
		failed: reg.CounterVec("runner_tenant_runs_failed_total",
			"Runs finalized with an error, by tenant.", "tenant"),
		rejected: reg.CounterVec("runner_tenant_rejected_total",
			"Submissions rejected by tenant admission control.", "tenant"),
		iterations: reg.CounterVec("runner_tenant_iterations_total",
			"Loop iterations executed by finished runs, by tenant.", "tenant"),
	}
}

// admitLocked enforces the tenant's admission limits against its live
// runs, pruning terminal handles from the live set as a side effect.
// Callers hold rn.mu.
func (rn *Runner) admitLocked(tenant string) error {
	live := rn.live[tenant][:0]
	queued, running := 0, 0
	for _, r := range rn.live[tenant] {
		st := r.State()
		if st.Terminal() {
			continue
		}
		live = append(live, r)
		if st == StateQueued {
			queued++
		} else {
			running++
		}
	}
	rn.live[tenant] = live
	lim := rn.tenants[tenant]
	if lim.MaxInflight > 0 && queued+running >= lim.MaxInflight {
		return ErrTenantInflight
	}
	if lim.MaxQueued > 0 && queued >= lim.MaxQueued {
		return ErrTenantQueueFull
	}
	return nil
}

// tally returns (creating if needed) the tenant's tally. Callers hold
// rn.mu.
func (rn *Runner) tally(name string) *tenantTally {
	t := rn.tallies[name]
	if t == nil {
		t = &tenantTally{}
		rn.tallies[name] = t
	}
	return t
}

// tenantFinish folds one terminal run into its tenant's tally;
// preempts is the number of preemption requeues the run went through.
func (rn *Runner) tenantFinish(tenant string, res *repro.Result, err error, preempts int64) {
	name := tenantName(tenant)
	if preempts < 0 {
		preempts = 0
	}
	rn.mu.Lock()
	t := rn.tally(name)
	if err == nil {
		t.done++
	} else {
		t.failed++
	}
	t.preempted += preempts
	if res != nil {
		t.iterations += res.Stats.Iterations
	}
	rn.mu.Unlock()
	if rn.tmet == nil {
		return
	}
	if err == nil {
		rn.tmet.done.With(name).Inc()
	} else {
		rn.tmet.failed.With(name).Inc()
	}
	if res != nil {
		rn.tmet.iterations.With(name).Add(res.Stats.Iterations)
	}
}

// TenantStats is one tenant's census row: configuration, live load, and
// lifetime outcome tallies.
type TenantStats struct {
	Tenant      string `json:"tenant"`
	Weight      int    `json:"weight"`
	Priority    int    `json:"priority"`
	MaxQueued   int    `json:"max_queued,omitempty"`
	MaxInflight int    `json:"max_inflight,omitempty"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	Submitted   int64  `json:"submitted"`
	Done        int64  `json:"done"`
	Failed      int64  `json:"failed"`
	Rejected    int64  `json:"rejected"`
	Preempted   int64  `json:"preempted"`
	Iterations  int64  `json:"iterations"`
}

// TenantStats returns the per-tenant census, sorted by tenant name.
// Configured tenants appear even before their first submission; the
// anonymous tenant appears once keyless work has been seen.
func (rn *Runner) TenantStats() []TenantStats {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	rows := map[string]*TenantStats{}
	row := func(name string) *TenantStats {
		r := rows[name]
		if r == nil {
			r = &TenantStats{Tenant: name, Weight: 1}
			rows[name] = r
		}
		return r
	}
	for name, t := range rn.tenants {
		r := row(tenantName(name))
		if t.Weight > 0 {
			r.Weight = t.Weight
		}
		r.Priority = t.Priority
		r.MaxQueued = t.MaxQueued
		r.MaxInflight = t.MaxInflight
	}
	for name, t := range rn.tallies {
		r := row(name)
		r.Submitted = t.submitted
		r.Done = t.done
		r.Failed = t.failed
		r.Rejected = t.rejected
		r.Preempted = t.preempted
		r.Iterations = t.iterations
	}
	for tenant, runs := range rn.live {
		r := row(tenantName(tenant))
		for _, run := range runs {
			switch run.State() {
			case StateQueued:
				r.Queued++
			case StateRunning:
				r.Running++
			}
		}
	}
	out := make([]TenantStats, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
