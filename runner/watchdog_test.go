package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// TestWatchdogReportsStuckRun: a run whose iteration bodies block stops
// advancing the heartbeat; the watchdog must surface a diagnostic that
// includes the executor's scheduling-state dump (Diagnostics is wired
// in automatically), and the run must still complete once unblocked.
func TestWatchdogReportsStuckRun(t *testing.T) {
	var mu sync.Mutex
	var stuckIDs []string
	rn := New(Config{
		MaxConcurrent: 1,
		Watchdog: WatchdogConfig{
			Interval: 60 * time.Millisecond,
			OnStuck: func(id, label, diagnostic string) {
				mu.Lock()
				stuckIDs = append(stuckIDs, id+"/"+label)
				mu.Unlock()
			},
		},
	})
	defer rn.Close()

	gate := make(chan struct{})
	r, err := rn.Submit(Submission{
		Program: gatedProgram(t, 50, gate),
		Options: repro.Options{Procs: 2, Engine: repro.EngineReal},
		Label:   "wedged",
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for r.Progress().Stuck == "" {
		select {
		case <-deadline:
			t.Fatalf("watchdog never declared the gated run stuck: %+v", r.Progress())
		case <-time.After(5 * time.Millisecond):
		}
	}
	diag := r.Progress().Stuck
	for _, want := range []string{"heartbeat pinned", "core: done=false", "proc 0:", "flight recorder:"} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, diag)
		}
	}
	mu.Lock()
	if len(stuckIDs) == 0 || !strings.Contains(stuckIDs[0], "wedged") {
		t.Errorf("OnStuck calls = %v, want one for the wedged run", stuckIDs)
	}
	mu.Unlock()

	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 50 {
		t.Errorf("iterations = %d, want 50", res.Stats.Iterations)
	}
}

// TestWatchdogCancelsStuckRun: with CancelStuck the watchdog trips the
// run's interrupt; once the bodies unblock the run drains out as
// cancelled.
func TestWatchdogCancelsStuckRun(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	rn := New(Config{
		MaxConcurrent: 1,
		Watchdog: WatchdogConfig{
			Interval:    60 * time.Millisecond,
			CancelStuck: true,
			// Unblocking on the stuck verdict stands in for an operator
			// clearing the external resource the run was wedged on.
			OnStuck: func(_, _, _ string) { once.Do(func() { close(gate) }) },
		},
	})
	defer rn.Close()

	r, err := rn.Submit(Submission{
		Program: gatedProgram(t, 1<<40, gate),
		Options: repro.Options{Procs: 2, Engine: repro.EngineReal},
		Label:   "doomed",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := r.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := r.State(); st != StateCancelled {
		t.Errorf("state = %v, want cancelled", st)
	}
	if p := r.Progress(); p.Stuck == "" {
		t.Error("terminal progress of a watchdog-cancelled run lost its diagnostic")
	}
}

// TestProgressReportsFailedIterations: quarantined iterations surface
// both in the final Result's failure report and in Progress snapshots.
func TestProgressReportsFailedIterations(t *testing.T) {
	nest := repro.MustBuild(func(b *repro.B) {
		b.DoallLeaf("F", repro.Const(40), func(e repro.Env, iv repro.IVec, j int64) {
			if j == 7 {
				panic("iteration 7 is cursed")
			}
			e.Work(10)
		})
	})
	prog, err := repro.Compile(nest)
	if err != nil {
		t.Fatal(err)
	}
	rn := New(Config{MaxConcurrent: 1})
	defer rn.Close()
	r, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{Procs: 2, Failure: "isolate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 39 || res.Stats.FailedIterations != 1 {
		t.Errorf("iterations = %d failed = %d, want 39/1",
			res.Stats.Iterations, res.Stats.FailedIterations)
	}
	rep := res.Stats.Failures
	if rep == nil || len(rep.Ranges) != 1 || rep.Ranges[0].Lo != 7 || rep.Ranges[0].Hi != 7 {
		t.Fatalf("failure report = %v, want the single quarantined iteration 7", rep)
	}
	if !strings.Contains(rep.Ranges[0].Err, "cursed") {
		t.Errorf("range error %q lost the body's panic value", rep.Ranges[0].Err)
	}
	if p := r.Progress(); p.FailedIterations != 1 {
		t.Errorf("Progress().FailedIterations = %d, want 1", p.FailedIterations)
	}
	// A failure policy the options layer does not know is rejected with
	// the sentinel before anything is enqueued.
	if _, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{Failure: "best-effort"},
	}); !errors.Is(err, repro.ErrBadFailure) {
		t.Errorf("Submit(best-effort) err = %v, want ErrBadFailure", err)
	}
}
