package runner

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// TestCheckpointAndResumeThroughRunner walks the full service-side
// cycle: submit with a deterministic checkpoint trigger, collect the
// snapshot from the checkpointed handle, resubmit with Resume, and
// compare the final statistics against an uninterrupted run.
func TestCheckpointAndResumeThroughRunner(t *testing.T) {
	reg := obs.NewRegistry()
	rn := New(Config{MaxConcurrent: 2, Metrics: reg})
	defer rn.Close()
	prog := finiteProgram(t, 64)

	ref, err := rn.Submit(Submission{Program: prog, Options: repro.Options{Procs: 4, Scheme: "gss"}})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	r, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{Procs: 4, Scheme: "gss", CheckpointAfter: 4},
		Label:   "pausing",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(context.Background()); err == nil {
		t.Fatal("checkpointed run returned a result")
	}
	if st := r.State(); st != StateCheckpointed {
		t.Fatalf("state = %v, want checkpointed", st)
	}
	ck := r.Checkpoint()
	if ck == nil || ck.Snapshot == nil || len(ck.Snapshot.ICBs) == 0 {
		t.Fatalf("checkpointed run has no snapshot: %+v", ck)
	}
	if p := r.Progress(); p.State != "checkpointed" {
		t.Errorf("progress state = %q", p.State)
	}

	res, err := rn.Submit(Submission{
		Program: prog,
		Options: repro.Options{Procs: 4, Scheme: "gss", Resume: ck},
		Label:   "resumed",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Wait(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	f, g := refRes.Stats, got.Stats
	if g.Iterations != f.Iterations || g.Chunks != f.Chunks || g.Instances != f.Instances ||
		g.Exits != f.Exits {
		t.Errorf("resumed stats %+v\nuninterrupted %+v", g, f)
	}

	var buf strings.Builder
	reg.WriteProm(&buf)
	if !strings.Contains(buf.String(), "runner_runs_checkpointed_total 1") {
		t.Errorf("metrics missing checkpointed counter:\n%s", buf.String())
	}
}

// TestRequestCheckpointPausesRunningRun exercises the asynchronous
// request path: a live run is asked to pause and must finalize as
// checkpointed with a resumable snapshot.
func TestRequestCheckpointPausesRunningRun(t *testing.T) {
	rn := New(Config{MaxConcurrent: 1})
	defer rn.Close()
	started := make(chan struct{})
	opts := repro.Options{
		Procs: 4, Engine: repro.EngineReal, Checkpointable: true,
		Observe: func(repro.Live) { close(started) },
	}
	r, err := rn.Submit(Submission{Program: finiteProgram(t, 1<<30), Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}
	for !r.RequestCheckpoint() {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-r.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("run did not pause after RequestCheckpoint")
	}
	if st := r.State(); st != StateCheckpointed {
		t.Fatalf("state = %v, want checkpointed", st)
	}
	if ck := r.Checkpoint(); ck == nil || ck.Snapshot == nil {
		t.Fatal("no snapshot on the paused run")
	}
}

// TestRequestCheckpointOnPlainRun reports false for runs without the
// checkpoint seam instead of doing anything.
func TestRequestCheckpointOnPlainRun(t *testing.T) {
	rn := New(Config{MaxConcurrent: 1})
	defer rn.Close()
	r, err := rn.Submit(Submission{Program: finiteProgram(t, 16), Options: repro.Options{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.RequestCheckpoint() {
		t.Error("RequestCheckpoint() = true on a run without the seam")
	}
	if r.Checkpoint() != nil {
		t.Error("plain run carries a checkpoint")
	}
}

// TestSubmissionIDPreserved pins the replay contract: a caller-chosen ID
// sticks and fresh IDs never collide with it.
func TestSubmissionIDPreserved(t *testing.T) {
	rn := New(Config{MaxConcurrent: 2})
	defer rn.Close()
	r, err := rn.Submit(Submission{Program: finiteProgram(t, 8), Options: repro.Options{Procs: 2}, ID: "run-0100"})
	if err != nil || r.ID() != "run-0100" {
		t.Fatalf("Submit with ID = %v, %v", r, err)
	}
	if _, err := rn.Submit(Submission{Program: finiteProgram(t, 8), ID: "run-0100"}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	fresh, err := rn.Submit(Submission{Program: finiteProgram(t, 8), Options: repro.Options{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() != "run-0101" {
		t.Errorf("fresh ID = %q, want run-0101", fresh.ID())
	}
	if _, ok := rn.Get("run-0100"); !ok {
		t.Error("Get by preserved ID failed")
	}
}
