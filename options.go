package repro

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/lowsched"
	"repro/internal/machine"
	"repro/internal/vmachine"
)

// Typed option errors. Every configuration mistake Run/RunContext can
// reject resolves, via errors.Is, to exactly one of these sentinels, so
// callers (CLIs, services) can map them to help text without string
// matching.
var (
	// ErrUnknownEngine reports an Options.Engine outside KnownEngines.
	ErrUnknownEngine = errors.New("repro: unknown engine")
	// ErrUnknownPool reports an Options.Pool outside KnownPools.
	ErrUnknownPool = errors.New("repro: unknown pool")
	// ErrBadScheme reports an Options.Scheme that does not parse (unknown
	// name or invalid parameters).
	ErrBadScheme = errors.New("repro: bad scheme")
	// ErrBadFailure reports an Options.Failure outside
	// KnownFailurePolicies.
	ErrBadFailure = errors.New("repro: unknown failure policy")
	// ErrBadRetry reports a negative Options.RetryAttempts or
	// Options.RetryBackoff.
	ErrBadRetry = errors.New("repro: negative retry configuration")
	// ErrBadClaim reports an invalid claim-path configuration: a negative
	// Options.ClaimBatch or Options.SWShards, or a ClaimBatch above 1
	// combined with a static pre-assignment scheme (leases need a cursor).
	ErrBadClaim = errors.New("repro: bad claim configuration")
	// ErrBadBudget (declared in budget.go) reports a negative
	// Options.BudgetIterations or Options.BudgetTime.
)

// KnownEngines lists the accepted Options.Engine values.
func KnownEngines() []string {
	return []string{string(EngineVirtual), string(EngineReal), string(EngineRealSpin)}
}

// KnownPools lists the accepted Options.Pool values (the empty string
// defaults to "per-loop").
func KnownPools() []string { return core.PoolNames() }

// KnownFailurePolicies lists the accepted Options.Failure values (the
// empty string defaults to fail-fast).
func KnownFailurePolicies() []string { return core.FailurePolicyNames() }

// KnownSchemes lists the accepted Options.Scheme specifications,
// derived from the lowsched scheme registry: every registered scheme's
// canonical forms first (both arities for optional-parameter schemes,
// uppercase letters standing for integer parameters), alias forms
// after. The displayed list and the parser read the same registry, so
// they cannot drift.
func KnownSchemes() []string { return lowsched.Specs() }

// Validate checks the options without running anything. It returns nil
// or an error matching one of the sentinel errors above.
func (o Options) Validate() error {
	_, err := o.resolve()
	return err
}

// resolved is an Options value after validation: defaults applied,
// strings parsed, ready to build an execution.
type resolved struct {
	procs    int
	scheme   lowsched.Scheme
	pool     core.PoolKind
	failure  core.FailurePolicy
	retry    core.Retry
	mkEngine func(*machine.Interrupt) machine.Engine
}

func (o Options) resolve() (resolved, error) {
	r := resolved{procs: o.Procs}
	if r.procs <= 0 {
		r.procs = 4
	}

	spec := o.Scheme
	if spec == "" {
		spec = "ss"
	}
	scheme, err := lowsched.Parse(spec)
	if err != nil {
		return r, fmt.Errorf("%w: %q", ErrBadScheme, o.Scheme)
	}
	r.scheme = scheme

	switch o.Pool {
	case "":
		r.pool = core.PoolPerLoop
	default:
		kind, err := core.ParsePool(o.Pool)
		if err != nil {
			return r, fmt.Errorf("%w: %q", ErrUnknownPool, o.Pool)
		}
		r.pool = kind
	}

	failure, err := core.ParseFailurePolicy(o.Failure)
	if err != nil {
		return r, fmt.Errorf("%w: %q", ErrBadFailure, o.Failure)
	}
	r.failure = failure
	if o.RetryAttempts < 0 || o.RetryBackoff < 0 {
		return r, fmt.Errorf("%w: attempts %d, backoff %d",
			ErrBadRetry, o.RetryAttempts, o.RetryBackoff)
	}
	r.retry = core.Retry{Attempts: o.RetryAttempts, Backoff: o.RetryBackoff}

	if o.ClaimBatch < 0 || o.SWShards < 0 {
		return r, fmt.Errorf("%w: claim batch %d, SW shards %d",
			ErrBadClaim, o.ClaimBatch, o.SWShards)
	}
	if o.ClaimBatch > 1 && lowsched.IsStatic(scheme) {
		return r, fmt.Errorf("%w: claim batch %d requires a cursor scheme (static scheme %q pre-assigns iterations)",
			ErrBadClaim, o.ClaimBatch, scheme.Name())
	}
	if o.BudgetIterations < 0 || o.BudgetTime < 0 {
		return r, fmt.Errorf("%w: iterations %d, time %d",
			ErrBadBudget, o.BudgetIterations, o.BudgetTime)
	}

	p := r.procs
	switch o.Engine {
	case "", EngineVirtual:
		r.mkEngine = func(intr *machine.Interrupt) machine.Engine {
			return vmachine.New(vmachine.Config{
				P:             p,
				AccessCost:    o.AccessCost,
				SpinCost:      o.SpinCost,
				Combining:     o.Combining,
				RemotePenalty: o.RemotePenalty,
				Interrupt:     intr,
			})
		}
	case EngineReal:
		r.mkEngine = func(intr *machine.Interrupt) machine.Engine {
			return machine.NewReal(machine.RealConfig{P: p, Mode: machine.WorkCount, Interrupt: intr})
		}
	case EngineRealSpin:
		r.mkEngine = func(intr *machine.Interrupt) machine.Engine {
			return machine.NewReal(machine.RealConfig{P: p, Mode: machine.WorkSpin, Interrupt: intr})
		}
	default:
		return r, fmt.Errorf("%w: %q", ErrUnknownEngine, o.Engine)
	}
	return r, nil
}
