package repro

import (
	"strings"
	"testing"
)

func quickNest() *Nest {
	return MustBuild(func(b *B) {
		b.Doall("I", Const(3), func(b *B) {
			b.DoallLeaf("A", Const(10), func(e Env, iv IVec, j int64) {
				e.Work(100)
			})
		})
	})
}

func TestExecuteVirtual(t *testing.T) {
	res, err := Execute(quickNest(), Options{Procs: 4, Scheme: "gss"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 30 {
		t.Errorf("iterations = %d, want 30", res.Stats.Iterations)
	}
	if res.SchemeName != "GSS" || res.Procs != 4 {
		t.Errorf("scheme=%q procs=%d", res.SchemeName, res.Procs)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %v", res.Utilization)
	}
	if res.Makespan <= 0 || len(res.Busy) != 4 {
		t.Errorf("makespan=%d busy=%v", res.Makespan, res.Busy)
	}
}

func TestExecuteRealEngines(t *testing.T) {
	for _, eng := range []EngineKind{EngineReal, EngineRealSpin} {
		res, err := Execute(quickNest(), Options{Procs: 2, Engine: eng})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Stats.Iterations != 30 {
			t.Errorf("%s: iterations = %d", eng, res.Stats.Iterations)
		}
	}
}

func TestRunWithVerify(t *testing.T) {
	prog, err := Compile(quickNest())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(Options{Procs: 8, Scheme: "css:4", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Error("Verify should populate the trace")
	}
}

func TestCompileWithCoalescing(t *testing.T) {
	prog, err := Compile(quickNest(), WithCoalescing())
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumLoops() != 1 {
		t.Errorf("coalesced NumLoops = %d, want 1", prog.NumLoops())
	}
	if !strings.Contains(prog.String(), "I*A") {
		t.Errorf("coalesced program:\n%s", prog)
	}
	res, err := prog.Run(Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 30 || res.Stats.Instances != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestProgramTables(t *testing.T) {
	prog, err := Compile(quickNest())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.DepthBoundTable(), "DEPTH") {
		t.Error("DepthBoundTable missing header")
	}
	if !strings.Contains(prog.DescriptorTable(), "DESCRPT_A") {
		t.Error("DescriptorTable missing records")
	}
	if !strings.Contains(prog.GraphDOT(), "digraph") {
		t.Error("GraphDOT not DOT")
	}
	if prog.Internal() == nil || prog.StdNest() == nil {
		t.Error("accessors returned nil")
	}
}

func TestOptionErrors(t *testing.T) {
	if _, err := Execute(quickNest(), Options{Engine: "warp"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := Execute(quickNest(), Options{Scheme: "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Build(func(b *B) {}); err == nil {
		t.Error("empty nest accepted")
	}
}

func TestDoacrossThroughPublicAPI(t *testing.T) {
	order := make(chan int64, 64)
	nest := MustBuild(func(b *B) {
		b.DoacrossLeaf("W", Const(20), 1, func(e Env, iv IVec, j int64) {
			e.Work(10)
			order <- j
		})
	})
	res, err := Execute(nest, Options{Procs: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verification re-runs the body sequentially; drain and count.
	close(order)
	n := 0
	for range order {
		n++
	}
	if n != 40 { // 20 parallel + 20 verification re-run
		t.Errorf("body executions = %d, want 40", n)
	}
	if res.Stats.Iterations != 20 {
		t.Errorf("iterations = %d", res.Stats.Iterations)
	}
}

func TestSingleListAndDispatchOptions(t *testing.T) {
	res, err := Execute(quickNest(), Options{Procs: 4, Pool: "single-list", DispatchCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DispatchTime == 0 {
		t.Error("dispatch cost not applied")
	}
}

func TestGanttChartAndHotSpots(t *testing.T) {
	res, err := Execute(quickNest(), Options{Procs: 4, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g := res.GanttChart(40)
	if !strings.Contains(g, "P0 ") || !strings.Contains(g, "A") {
		t.Errorf("gantt chart:\n%s", g)
	}
	if len(res.HotSpots) == 0 {
		t.Fatal("no hot spots reported on the virtual engine")
	}
	names := map[string]bool{}
	for _, h := range res.HotSpots {
		names[h.Name] = true
	}
	if !names["index"] && !names["SW"] {
		t.Errorf("hot spots missing scheduler variables: %+v", res.HotSpots)
	}
	// Without a trace, the chart is empty.
	res2, err := Execute(quickNest(), Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.GanttChart(10) != "" {
		t.Error("GanttChart without trace should be empty")
	}
	// Real engine reports no hot spots.
	res3, err := Execute(quickNest(), Options{Procs: 2, Engine: EngineReal})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.HotSpots) != 0 {
		t.Error("real engine should not report hot spots")
	}
}

func TestSectionsThroughPublicAPI(t *testing.T) {
	nest := MustBuild(func(b *B) {
		b.Sections("PAR",
			func(b *B) { b.DoallLeaf("S1", Const(5), func(e Env, iv IVec, j int64) { e.Work(10) }) },
			func(b *B) { b.DoallLeaf("S2", Const(5), func(e Env, iv IVec, j int64) { e.Work(10) }) },
		)
	})
	res, err := Execute(nest, Options{Procs: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 10 {
		t.Errorf("iterations = %d, want 10", res.Stats.Iterations)
	}
}

func TestPoolOption(t *testing.T) {
	for _, pool := range []string{"", "per-loop", "single", "distributed"} {
		res, err := Execute(quickNest(), Options{Procs: 4, Pool: pool, Verify: true})
		if err != nil {
			t.Fatalf("pool %q: %v", pool, err)
		}
		if res.Stats.Iterations != 30 {
			t.Errorf("pool %q: iterations = %d", pool, res.Stats.Iterations)
		}
	}
	if _, err := Execute(quickNest(), Options{Pool: "bogus"}); err == nil {
		t.Error("unknown pool accepted")
	}
}

func TestRemotePenaltyOption(t *testing.T) {
	run := func(pen int64) int64 {
		res, err := Execute(MustBuild(func(b *B) {
			b.DoallLeaf("A", Const(200), func(e Env, iv IVec, j int64) { e.Work(5) })
		}), Options{Procs: 4, AccessCost: 10, RemotePenalty: pen})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if flat, numa := run(0), run(50); numa <= flat {
		t.Errorf("remote penalty should lengthen the run: %d vs %d", numa, flat)
	}
}

func TestCombiningOption(t *testing.T) {
	run := func(comb bool) int64 {
		res, err := Execute(MustBuild(func(b *B) {
			b.DoallLeaf("A", Const(400), func(e Env, iv IVec, j int64) { e.Work(1) })
		}), Options{Procs: 8, AccessCost: 20, Combining: comb})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if c, s := run(true), run(false); c >= s {
		t.Errorf("combining (%d) should beat serialized (%d) on a hot index", c, s)
	}
}
