package repro_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
)

func ckptNest() *repro.Nest {
	return repro.MustBuild(func(b *repro.B) {
		b.Doall("outer", repro.Const(8), func(b *repro.B) {
			b.DoallLeaf("inner", repro.Const(12), func(e repro.Env, iv repro.IVec, j int64) {
				e.Work(40)
			})
		})
	})
}

func TestCheckpointResumeRoundTripsThroughJSON(t *testing.T) {
	prog, err := repro.Compile(ckptNest())
	if err != nil {
		t.Fatal(err)
	}
	full, err := prog.Run(repro.Options{Procs: 4, Scheme: "gss"})
	if err != nil {
		t.Fatal(err)
	}

	_, err = prog.Run(repro.Options{Procs: 4, Scheme: "gss", CheckpointAfter: 6})
	var cke *repro.CheckpointedError
	if !errors.As(err, &cke) {
		t.Fatalf("CheckpointAfter run returned %v, want CheckpointedError", err)
	}
	if !errors.Is(err, repro.ErrCheckpointed) {
		t.Fatal("CheckpointedError does not match repro.ErrCheckpointed")
	}
	if cke.Checkpoint.Program != prog.Fingerprint() {
		t.Errorf("checkpoint fingerprint %q, program %q", cke.Checkpoint.Program, prog.Fingerprint())
	}

	// The daemon hands checkpoints over the wire as JSON.
	wire, err := json.Marshal(cke.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	var back repro.Checkpoint
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}

	res, err := prog.Run(repro.Options{Procs: 4, Scheme: "gss", Resume: &back})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	f, g := full.Stats, res.Stats
	if g.Iterations != f.Iterations || g.Chunks != f.Chunks || g.Instances != f.Instances ||
		g.Enters != f.Enters || g.Exits != f.Exits {
		t.Errorf("resumed stats trajectory diverges:\nresumed       %+v\nuninterrupted %+v", g, f)
	}
	if res.Makespan <= 0 {
		t.Errorf("resumed makespan %d", res.Makespan)
	}
}

func TestCheckpointRejections(t *testing.T) {
	prog, err := repro.Compile(ckptNest())
	if err != nil {
		t.Fatal(err)
	}
	other, err := repro.Compile(repro.MustBuild(func(b *repro.B) {
		b.DoallLeaf("different", repro.Const(5), func(e repro.Env, iv repro.IVec, j int64) { e.Work(1) })
	}))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Fingerprint() == other.Fingerprint() {
		t.Fatal("distinct programs share a fingerprint")
	}

	_, err = prog.Run(repro.Options{Procs: 4, CheckpointAfter: 3})
	var cke *repro.CheckpointedError
	if !errors.As(err, &cke) {
		t.Fatal(err)
	}

	if _, err := other.Run(repro.Options{Procs: 4, Resume: cke.Checkpoint}); !errors.Is(err, repro.ErrBadCheckpoint) {
		t.Errorf("foreign program resume: err=%v, want ErrBadCheckpoint", err)
	}
	if _, err := prog.Run(repro.Options{Procs: 4, Resume: &repro.Checkpoint{}}); !errors.Is(err, repro.ErrBadCheckpoint) {
		t.Errorf("empty checkpoint: err=%v, want ErrBadCheckpoint", err)
	}
	if _, err := prog.Run(repro.Options{Procs: 4, Resume: cke.Checkpoint, Verify: true}); err == nil {
		t.Error("Resume+Verify accepted")
	}
	if _, err := prog.Run(repro.Options{Procs: 4, Scheme: "static-block", Checkpointable: true}); !errors.Is(err, repro.ErrNotCheckpointable) {
		t.Errorf("static scheme: err=%v, want ErrNotCheckpointable", err)
	}
	// Wrong processor count against the snapshot's.
	if _, err := prog.Run(repro.Options{Procs: 2, Resume: cke.Checkpoint}); !errors.Is(err, repro.ErrBadSnapshot) {
		t.Errorf("procs mismatch: err=%v, want ErrBadSnapshot", err)
	}
}

func TestObserveProbeRequestsCheckpoint(t *testing.T) {
	prog, err := repro.Compile(ckptNest())
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.Run(repro.Options{
		Procs: 4, Checkpointable: true,
		Observe: func(l repro.Live) {
			if !l.(core.Checkpointer).RequestCheckpoint() {
				t.Error("RequestCheckpoint() = false on a checkpointable run")
			}
		},
	})
	if !errors.Is(err, repro.ErrCheckpointed) {
		t.Fatalf("err = %v, want ErrCheckpointed", err)
	}
}

func TestFlightRecorderFeedsDiagnostics(t *testing.T) {
	prog, err := repro.Compile(ckptNest())
	if err != nil {
		t.Fatal(err)
	}
	var live repro.Live
	if _, err := prog.Run(repro.Options{
		Procs: 4, Diagnostics: true, FlightRecorder: 64,
		Observe: func(l repro.Live) { live = l },
	}); err != nil {
		t.Fatal(err)
	}
	d := live.(core.Diagnoser).Diagnose()
	if !strings.Contains(d, "flight recorder:") || !strings.Contains(d, "claim") {
		t.Errorf("diagnostic dump missing the flight tail:\n%s", d)
	}
}
