package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Checkpoint is a resumable snapshot of a paused run: the paper's
// scheduling state (live instance control blocks with their low-level
// index cursors, barrier counters, cumulative statistics) plus a
// fingerprint of the program it belongs to. Checkpoints serialize to
// JSON, so a daemon can hand one to a client and accept it back on a
// later submission — possibly after a process restart.
type Checkpoint struct {
	// Program fingerprints the compiled descriptor tables the snapshot
	// was captured from; Resume refuses a checkpoint whose fingerprint
	// does not match the submitted program.
	Program string `json:"program"`
	// Snapshot is the captured scheduling state.
	Snapshot *core.RunSnapshot `json:"snapshot"`
}

// Checkpoint/resume errors.
var (
	// ErrCheckpointed is the cause of every *CheckpointedError: a run
	// that paused at a checkpoint instead of completing.
	ErrCheckpointed = errors.New("repro: run checkpointed")
	// ErrNotCheckpointable reports a configuration whose scheduling state
	// cannot be captured losslessly (static pre-assignment schemes,
	// Doacross nests, manually synchronized leaves).
	ErrNotCheckpointable = core.ErrNotCheckpointable
	// ErrBadSnapshot reports a snapshot that fails restore validation
	// (wrong engine size, scheme, pool, or corrupted cursors).
	ErrBadSnapshot = core.ErrBadSnapshot
	// ErrBadCheckpoint reports a Resume checkpoint that is structurally
	// unusable: no snapshot, or a program fingerprint mismatch.
	ErrBadCheckpoint = errors.New("repro: checkpoint does not match program")
)

// CheckpointedError is the non-Result outcome of a run that paused at a
// checkpoint: the requested pause is not a failure, but there is no
// Result either — the work is not finished. It matches ErrCheckpointed
// via errors.Is; the embedded Checkpoint resumes the run.
type CheckpointedError struct {
	Checkpoint *Checkpoint
}

func (e *CheckpointedError) Error() string {
	n := 0
	if e.Checkpoint != nil && e.Checkpoint.Snapshot != nil {
		n = len(e.Checkpoint.Snapshot.ICBs)
	}
	return fmt.Sprintf("repro: run checkpointed with %d live instance(s)", n)
}

// Is reports ErrCheckpointed as this error's cause.
func (e *CheckpointedError) Is(target error) bool { return target == ErrCheckpointed }

// Fingerprint identifies the compiled program for checkpoint matching:
// a hash over the descriptor tables (DEPTH/BOUND and DESCRPT), which
// determine the scheduling state space. Two compilations of the same
// nest fingerprint identically; any structural change — bounds, nesting,
// construct kinds — changes it.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(p.desc.FormatDepthBound()))
	h.Write([]byte(p.desc.FormatDescriptors()))
	return hex.EncodeToString(h.Sum(nil)[:16])
}
