package repro

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Budget errors.
var (
	// ErrBudgetExceeded is the cause of every *BudgetExceededError: a run
	// that exhausted its execution budget before completing.
	ErrBudgetExceeded = errors.New("repro: budget exceeded")
	// ErrBadBudget reports a negative Options.BudgetIterations or
	// Options.BudgetTime.
	ErrBadBudget = errors.New("repro: negative budget")
)

// BudgetExceededError is the non-Result outcome of a run that exhausted
// its execution budget (Options.BudgetIterations / Options.BudgetTime).
// Like a checkpoint pause it is not a failure, but there is no Result —
// the work is not finished. It matches ErrBudgetExceeded via errors.Is.
//
// Iteration budgets are exact on every engine, scheme and claim batch:
// the run executed precisely min(total iterations, budget) iterations.
// For runs configured Checkpointable the error carries a resumable
// Checkpoint, so a manager can treat exhaustion as preemption: park the
// checkpoint and resubmit it later with a fresh budget.
type BudgetExceededError struct {
	// Iterations is the iteration count consumed against the budget.
	Iterations int64
	// Elapsed is the engine time at the pause (virtual units, or
	// nanoseconds on the real engines).
	Elapsed int64
	// Checkpoint resumes the run; non-nil only when the run was
	// configured with Options.Checkpointable.
	Checkpoint *Checkpoint
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("repro: budget exceeded after %d iteration(s), engine time %d", e.Iterations, e.Elapsed)
}

// Is reports ErrBudgetExceeded as this error's cause.
func (e *BudgetExceededError) Is(target error) bool { return target == ErrBudgetExceeded }

// asBudgetExceeded converts core's budget error to the public surface.
func (p *Program) asBudgetExceeded(err error) (*BudgetExceededError, bool) {
	var be *core.BudgetExceededError
	if !errors.As(err, &be) {
		return nil, false
	}
	out := &BudgetExceededError{Iterations: be.Iterations, Elapsed: int64(be.Elapsed)}
	if be.Snapshot != nil {
		out.Checkpoint = &Checkpoint{Program: p.Fingerprint(), Snapshot: be.Snapshot}
	}
	return out, true
}
