// Package repro is a Go reproduction of "Dynamic Processor
// Self-Scheduling for General Parallel Nested Loops" (Fang, Tang, Yew,
// Zhu; ICPP 1987): a two-level run-time scheduler for general parallel
// nested loops on shared-memory multiprocessors.
//
// A general parallel nested loop mixes Doall loops, Doacross loops,
// serial loops and IF-THEN-ELSE constructs in any nesting order, with
// loop bounds that may depend on outer indexes and iteration times that
// vary arbitrarily. The scheme instruments such a program so that
// processors schedule loop iterations among themselves at run time with
// no operating-system involvement:
//
//   - at the low level, iterations of one innermost parallel loop
//     instance are grabbed with indivisible fetch-and-add operations
//     (plug-in policies: SS, CSS(k), GSS, TSS, factoring);
//   - at the high level, instances are activated through a macro-dataflow
//     precedence relation and held in a task pool of parallel linked
//     lists searched by leading-one detection on a control word.
//
// # Quick start
//
//	nest := repro.MustBuild(func(b *repro.B) {
//	    b.DoallLeaf("loop", repro.Const(1000), func(e repro.Env, iv repro.IVec, j int64) {
//	        e.Work(100) // 100 cost units of simulated computation
//	    })
//	})
//	prog, _ := repro.Compile(nest)
//	res, _ := prog.Run(repro.Options{Procs: 8, Scheme: "gss"})
//	fmt.Println(res.Makespan, res.Utilization)
//
// Programs run on either of two engines: a deterministic virtual-time
// multiprocessor (default; exact, reproducible, with a memory-contention
// model) or the real Go runtime (goroutines and atomics).
package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"

	_ "repro/internal/adapt" // registers the adaptive "auto" scheme
	"repro/internal/core"
	"repro/internal/descr"
	"repro/internal/flight"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/refexec"
	"repro/internal/trace"
	"repro/internal/vmachine"
)

// Re-exported program-construction surface (see package loopir).
type (
	// B is the nest builder passed to Build callbacks.
	B = loopir.B
	// Env is the execution environment seen by iteration bodies.
	Env = loopir.Env
	// IVec is an index vector of enclosing loop indexes (1-based).
	IVec = loopir.IVec
	// Bound is a loop bound: constant or function of outer indexes.
	Bound = loopir.Bound
	// Nest is an un-compiled general parallel nested loop.
	Nest = loopir.Nest
	// BodyFn is an innermost-loop iteration body.
	BodyFn = loopir.BodyFn
	// StmtFn is a scalar statement body.
	StmtFn = loopir.StmtFn
	// CondFn is an IF condition.
	CondFn = loopir.CondFn
)

// Const returns a constant loop bound.
func Const(n int64) Bound { return loopir.Const(n) }

// BoundFn returns a loop bound computed from the enclosing indexes.
func BoundFn(f func(iv IVec) int64) Bound { return loopir.BoundFn(f) }

// Build constructs a nest; the callback appends constructs to b.
func Build(f func(b *B)) (*Nest, error) { return loopir.Build(f) }

// MustBuild is Build that panics on error.
func MustBuild(f func(b *B)) *Nest { return loopir.MustBuild(f) }

// Program is a compiled nest: standardized form plus the descriptor
// arrays (DEPTH, BOUND, DESCRPT) consumed by the run-time scheduler.
//
// A Program is immutable after Compile and safe for concurrent use: the
// execution plan (descriptor tables, successor fan-out, barrier
// topology) is derived once on first run and shared by every subsequent
// and concurrent Run/RunContext call without recompilation.
type Program struct {
	std  *loopir.Nest
	desc *descr.Program

	planOnce sync.Once
	plan     *core.Plan
	planErr  error
}

// execPlan returns the cached execution plan, deriving it on first use.
func (p *Program) execPlan() (*core.Plan, error) {
	p.planOnce.Do(func() {
		p.plan, p.planErr = core.NewPlan(p.desc)
	})
	return p.plan, p.planErr
}

// CompileOption adjusts compilation.
type CompileOption func(*compileCfg)

type compileCfg struct {
	coalesce bool
}

// WithCoalescing applies implicit loop coalescing (Fig. 3) to perfect
// Doall nests with static inner bounds before compiling.
func WithCoalescing() CompileOption {
	return func(c *compileCfg) { c.coalesce = true }
}

// Compile standardizes the nest (Fig. 2) and builds the descriptor
// arrays (Figs. 5-6).
func Compile(nest *Nest, opts ...CompileOption) (*Program, error) {
	var cfg compileCfg
	for _, o := range opts {
		o(&cfg)
	}
	std, err := nest.Standardize()
	if err != nil {
		return nil, err
	}
	if cfg.coalesce {
		if std, err = std.Coalesce(); err != nil {
			return nil, err
		}
	}
	desc, err := descr.Compile(std)
	if err != nil {
		return nil, err
	}
	return &Program{std: std, desc: desc}, nil
}

// NumLoops returns the number of innermost parallel loops (the paper's m).
func (p *Program) NumLoops() int { return p.desc.M }

// String renders the standardized nest (Fig. 1 style).
func (p *Program) String() string { return p.std.String() }

// DepthBoundTable renders the DEPTH/BOUND arrays (Fig. 5).
func (p *Program) DepthBoundTable() string { return p.desc.FormatDepthBound() }

// DescriptorTable renders the DESCRPT records (Fig. 6).
func (p *Program) DescriptorTable() string { return p.desc.FormatDescriptors() }

// GraphDOT renders the macro-dataflow graph (Fig. 4) in Graphviz format.
// It requires loop bounds evaluable from enclosing indexes.
func (p *Program) GraphDOT() string { return descr.BuildGraph(p.desc).DOT() }

// InstrumentationListing renders the instrumented program in the paper's
// pseudocode style: the self-scheduling code each processor executes,
// specialized with this program's descriptor contents.
func (p *Program) InstrumentationListing() string { return p.desc.FormatInstrumented() }

// Internal returns the compiled descriptor program, for advanced use with
// the internal packages (experiments, custom engines).
func (p *Program) Internal() *descr.Program { return p.desc }

// StdNest returns the standardized nest.
func (p *Program) StdNest() *loopir.Nest { return p.std }

// EngineKind selects the execution substrate.
type EngineKind string

// Engine kinds.
const (
	// EngineVirtual is the deterministic virtual-time multiprocessor
	// (discrete-event simulation with a memory-contention model).
	EngineVirtual EngineKind = "virtual"
	// EngineReal runs on goroutines with Work accounted but not slept.
	EngineReal EngineKind = "real"
	// EngineRealSpin runs on goroutines with Work realized as calibrated
	// busy-wait (for wall-clock benchmarking).
	EngineRealSpin EngineKind = "real-spin"
)

// Options configure one run.
type Options struct {
	// Procs is the processor count (default 4).
	Procs int
	// Scheme is the low-level self-scheduling policy specification,
	// e.g. "ss", "css:K", "gss", "tss:F:L", "fac2", "af:CV", "tfss",
	// or "auto" (the adaptive policy). KnownSchemes lists every
	// accepted form; the default is "ss".
	Scheme string
	// Engine selects the substrate (default EngineVirtual).
	Engine EngineKind
	// AccessCost is the virtual machine's synchronization access cost
	// (default 10; ignored by real engines).
	AccessCost int64
	// SpinCost is the virtual machine's busy-wait retry cost (defaults
	// to AccessCost).
	SpinCost int64
	// Combining enables the virtual machine's combining network for
	// fetch-and-add hot spots.
	Combining bool
	// RemotePenalty is the virtual machine's extra cost for accessing a
	// synchronization variable homed on another processor (NUMA model).
	RemotePenalty int64
	// Pool selects the task-pool organization: "" or "per-loop" (the
	// paper's m parallel lists + SW), "single" / "single-list" (one
	// shared list), or "distributed" (per-processor lists with work
	// stealing). KnownPools lists every accepted spelling.
	Pool string
	// DispatchCost models an OS dispatch on every task grab (baseline).
	DispatchCost int64
	// CollectTrace records an event trace into Result.Trace.
	CollectTrace bool
	// Verify re-executes the program sequentially after the run and
	// checks exactly-once execution and macro-dataflow precedence
	// against the trace (implies CollectTrace). Note that verification
	// re-runs iteration bodies, so bodies must tolerate re-execution.
	Verify bool
	// Observe, if non-nil, is called once when the run starts, with a
	// live probe of the execution. The probe may be sampled concurrently
	// from other goroutines for the whole run; run managers use it to
	// stream progress (iterations grabbed, instances completed, live
	// scheduling efficiency) while the run is in flight.
	Observe func(Live)
	// Failure selects the partial-failure policy: "" or "failfast" /
	// "fail-fast" (first body failure aborts the run) or "isolate"
	// (failing iterations are quarantined and reported in
	// Result.Stats.Failures while the rest of the nest completes).
	// KnownFailurePolicies lists every accepted spelling. Verify cannot
	// observe exactly-once execution for quarantined iterations, so a
	// verifying run should not expect body failures.
	Failure string
	// RetryAttempts is the number of extra attempts the isolate policy
	// gives a failing iteration before quarantining it (default 0: no
	// retry).
	RetryAttempts int
	// RetryBackoff is the idle time (engine cost units) charged before
	// the first retry; it doubles on each subsequent attempt.
	RetryBackoff int64
	// Diagnostics enables live-instance tracking so the probe handed to
	// Observe can render a scheduling-state dump (core.Diagnoser); run
	// managers use it for stuck-run watchdog reports. It adds a small
	// host-side bookkeeping cost per instance activation.
	Diagnostics bool
	// FlightRecorder, when positive, attaches a kernel flight recorder
	// retaining the last N scheduling events per processor; the tail is
	// folded into diagnostic dumps (with Diagnostics) and costs no
	// engine time, so virtual-time results are unchanged. Zero or
	// negative disables it.
	FlightRecorder int
	// Checkpointable enables the checkpoint seam: the probe handed to
	// Observe supports RequestCheckpoint (assert it to core.Checkpointer)
	// and the run may end with a *CheckpointedError instead of a Result.
	// Checkpointing requires a dynamically scheduled (non-static,
	// non-Doacross) nest; Run rejects others with ErrNotCheckpointable.
	Checkpointable bool
	// CheckpointAfter, when positive, pauses the run at a checkpoint
	// after that many chunk claims (a deterministic trigger on the
	// virtual engine). It implies Checkpointable.
	CheckpointAfter int64
	// Resume restores a checkpoint captured from the same program (by
	// fingerprint) before the run starts; the resumed run continues to
	// completion, with cumulative statistics. Resume cannot be combined
	// with Verify: the trace cannot observe pre-checkpoint iterations.
	Resume *Checkpoint
	// ClaimBatch, when greater than 1, makes each low-level claim lease a
	// run of up to that many successive chunks with a single indivisible
	// operation, amortizing the per-claim overhead (the O1 of eq. 2)
	// across the batch; the lease is sliced locally without further
	// synchronization accesses. Requires a cursor (dynamic) scheme. Zero
	// or 1 is the paper's one-chunk-per-claim protocol, unchanged.
	ClaimBatch int
	// SWShards, when greater than 1, splits the task pool's SW control
	// word into that many shard words, each charged as its own
	// synchronization variable, so pool sweeps and appends to different
	// shards stop contending on one memory module. Applies to the
	// per-loop pool only; zero or 1 is the paper's single control word.
	SWShards int
	// BudgetIterations, when positive, caps the iterations the run may
	// execute: the run pauses at exactly that count (on every engine,
	// scheme and claim batch) and returns a *BudgetExceededError instead
	// of a Result. With Checkpointable set the error carries a resumable
	// Checkpoint. Zero is unmetered, with no cost on the claim path.
	BudgetIterations int64
	// BudgetTime, when positive, is an engine-time ceiling (virtual
	// units, or nanoseconds on the real engines) checked at claim
	// boundaries: once reached, no further chunks are claimed and the
	// run returns a *BudgetExceededError. Claimed work still completes,
	// so the overshoot is bounded by one chunk (or lease) per processor.
	BudgetTime int64
	// CombineClaims marks the per-instance claim hot spots (the ICB's
	// Index and ICount) as software-combinable: on the virtual machine
	// (without the global Combining network), concurrent accesses that
	// arrive while one is in flight join its combining window instead of
	// queueing behind it. Ignored by the real engines and subsumed by
	// Options.Combining.
	CombineClaims bool
}

// Live is a concurrency-safe view into a running execution, handed to
// Options.Observe. Its LiveStats method snapshots the executor counters
// (core.Snapshot) at any time during or after the run.
type Live = core.Probe

// Result reports one run.
type Result struct {
	// Makespan is the run's total time (virtual units, or nanoseconds on
	// the real engines).
	Makespan int64
	// Utilization is total busy time / (P * makespan), the empirical eta
	// of eq. (1).
	Utilization float64
	// Busy is per-processor busy time.
	Busy []int64
	// Accesses is per-processor synchronization access counts.
	Accesses []int64
	// Stats are the executor counters (O1/O2/O3 decomposition).
	Stats core.Snapshot
	// SchemeName is the resolved low-level scheme.
	SchemeName string
	// Procs is the processor count used.
	Procs int
	// Trace is the event log when CollectTrace/Verify was set.
	Trace *trace.Log
	// HotSpots lists the most contended synchronization variables
	// (virtual engine only), ordered by queueing time.
	HotSpots []HotSpot

	prog *Program
}

// HotSpot is the contention profile of one synchronization variable on
// the virtual machine.
type HotSpot struct {
	// Name is the variable's debug name (e.g. "index", "SW", "L(3).next").
	Name string
	// Accesses counts accesses.
	Accesses int64
	// Wait is the total memory-module queueing time beyond the raw access
	// cost.
	Wait int64
}

// GanttChart renders a per-processor execution timeline of the run with
// the given width in columns. It requires the run to have collected a
// trace (Options.CollectTrace or Options.Verify); otherwise it returns "".
func (r *Result) GanttChart(width int) string {
	if r.Trace == nil {
		return ""
	}
	return r.Trace.Gantt(r.prog.desc, r.Procs, width)
}

// Run executes the program under the given options. It is
// RunContext with a background context.
func (p *Program) Run(opts Options) (*Result, error) {
	return p.RunContext(context.Background(), opts)
}

// RunContext executes the program under the given options with
// cooperative cancellation: when ctx is cancelled or its deadline
// expires, the run's interrupt trips, every processor (virtual or real)
// drains out at its next preemption point — an iteration boundary, a
// SEARCH sweep, a busy-wait retry, or (on the spinning real engine) the
// calibrated busy-wait itself — and RunContext returns ctx's error
// (errors.Is-able against context.Canceled / context.DeadlineExceeded).
// A cancelled run produces no Result.
//
// Configuration mistakes are reported with the typed errors of
// Options.Validate before any execution starts.
func (p *Program) RunContext(ctx context.Context, opts Options) (*Result, error) {
	rs, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	pl, err := p.execPlan()
	if err != nil {
		return nil, err
	}
	intr := machine.NewInterrupt()
	eng := rs.mkEngine(intr)
	var log *trace.Log
	var tracer core.Tracer
	if opts.CollectTrace || opts.Verify {
		log = trace.New()
		tracer = log
	}
	var ckpt *core.CheckpointConfig
	if opts.Checkpointable || opts.CheckpointAfter > 0 || opts.Resume != nil {
		ckpt = &core.CheckpointConfig{AfterChunks: opts.CheckpointAfter}
		if opts.Resume != nil {
			if opts.Verify {
				return nil, fmt.Errorf("repro: Verify cannot check a resumed run (pre-checkpoint iterations are not in this trace)")
			}
			if opts.Resume.Snapshot == nil {
				return nil, fmt.Errorf("%w: checkpoint has no snapshot", ErrBadCheckpoint)
			}
			if opts.Resume.Program != "" && opts.Resume.Program != p.Fingerprint() {
				return nil, fmt.Errorf("%w: checkpoint from program %s, submitted program %s",
					ErrBadCheckpoint, opts.Resume.Program, p.Fingerprint())
			}
			ckpt.Restore = opts.Resume.Snapshot
		}
	}
	var rec *flight.Recorder
	if opts.FlightRecorder > 0 {
		rec = flight.New(rs.procs, opts.FlightRecorder)
	}
	var budget *core.Budget
	if opts.BudgetIterations > 0 || opts.BudgetTime > 0 {
		budget = &core.Budget{
			Iterations: opts.BudgetIterations,
			Time:       machine.Time(opts.BudgetTime),
		}
	}
	rep, err := core.RunPlanContext(ctx, pl, core.Config{
		Engine:        eng,
		Scheme:        rs.scheme,
		Pool:          rs.pool,
		Tracer:        tracer,
		DispatchCost:  opts.DispatchCost,
		Interrupt:     intr,
		OnStart:       opts.Observe,
		Failure:       rs.failure,
		Retry:         rs.retry,
		Diagnostics:   opts.Diagnostics,
		Recorder:      rec,
		Checkpoint:    ckpt,
		ClaimBatch:    opts.ClaimBatch,
		SWShards:      opts.SWShards,
		CombineClaims: opts.CombineClaims,
		Budget:        budget,
	})
	if err != nil {
		if be, ok := p.asBudgetExceeded(err); ok {
			return nil, be
		}
		var cke *core.CheckpointedError
		if errors.As(err, &cke) {
			return nil, &CheckpointedError{Checkpoint: &Checkpoint{
				Program:  p.Fingerprint(),
				Snapshot: cke.Snapshot,
			}}
		}
		return nil, err
	}
	if opts.Verify {
		ref, err := refexec.Run(p.std)
		if err != nil {
			return nil, fmt.Errorf("repro: verification reference run: %w", err)
		}
		engName := "real"
		if _, ok := eng.(*vmachine.Engine); ok {
			engName = "virtual"
		}
		nestLabel := ""
		if len(p.std.Root) > 0 {
			nestLabel = p.std.Root[0].Label
		}
		vctx := refexec.Context{
			Nest:   nestLabel,
			Scheme: rs.scheme.Name(),
			Pool:   rs.pool.String(),
			Engine: engName,
		}
		if err := log.VerifyExactlyOnceIn(p.desc, ref, vctx); err != nil {
			return nil, fmt.Errorf("repro: verification: %w", err)
		}
		if err := log.VerifyPrecedence(p.desc, descr.BuildGraph(p.desc)); err != nil {
			return nil, fmt.Errorf("repro: verification: %w", err)
		}
	}
	res := &Result{
		Makespan:    rep.Makespan,
		Utilization: rep.Utilization(),
		Busy:        rep.Busy,
		Accesses:    rep.Accesses,
		Stats:       rep.Stats,
		SchemeName:  rep.Scheme,
		Procs:       eng.NumProcs(),
		Trace:       log,
		prog:        p,
	}
	if ve, ok := eng.(*vmachine.Engine); ok {
		for _, h := range ve.HotSpots(10) {
			res.HotSpots = append(res.HotSpots, HotSpot{Name: h.Name, Accesses: h.Accesses, Wait: h.Wait})
		}
	}
	return res, nil
}

// Execute compiles and runs a nest in one call.
func Execute(nest *Nest, opts Options) (*Result, error) {
	return ExecuteContext(context.Background(), nest, opts)
}

// ExecuteContext compiles and runs a nest in one call with cooperative
// cancellation (see Program.RunContext).
func ExecuteContext(ctx context.Context, nest *Nest, opts Options) (*Result, error) {
	prog, err := Compile(nest)
	if err != nil {
		return nil, err
	}
	return prog.RunContext(ctx, opts)
}
