// Sections: PCF-style parallel sections ("vertical parallelism", the
// extension Section II-B of the paper sketches). Three pipeline stages
// with different shapes run concurrently as sections; the Gantt chart
// shows them overlapping, and a serialized run quantifies the gain.
package main

import (
	"fmt"
	"log"

	"repro"
)

func build(parallel bool) *repro.Nest {
	fft := func(b *repro.B) {
		b.DoallLeaf("F", repro.Const(24), func(e repro.Env, iv repro.IVec, j int64) {
			e.Work(200)
		})
	}
	filter := func(b *repro.B) {
		b.Serial("P", repro.Const(4), func(b *repro.B) {
			b.DoallLeaf("L", repro.Const(12), func(e repro.Env, iv repro.IVec, j int64) {
				e.Work(50)
			})
		})
	}
	stats := func(b *repro.B) {
		b.DoallLeaf("S", repro.Const(8), func(e repro.Env, iv repro.IVec, j int64) {
			e.Work(100)
		})
	}
	return repro.MustBuild(func(b *repro.B) {
		if parallel {
			b.Sections("PAR", fft, filter, stats)
		} else {
			fft(b)
			filter(b)
			stats(b)
		}
		b.DoallLeaf("MERGE", repro.Const(8), func(e repro.Env, iv repro.IVec, j int64) {
			e.Work(30)
		})
	})
}

func run(parallel bool) *repro.Result {
	prog, err := repro.Compile(build(parallel))
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(repro.Options{
		Procs:        8,
		AccessCost:   5,
		CollectTrace: true,
		Verify:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Printf("parallel sections (FFT / serial filter pipeline / statistics), then a merge\n\n")
	par := run(true)
	ser := run(false)
	fmt.Printf("sections   makespan %6d   utilization %.3f\n", par.Makespan, par.Utilization)
	fmt.Printf("serialized makespan %6d   utilization %.3f\n", ser.Makespan, ser.Utilization)
	fmt.Printf("speedup from vertical parallelism: %.2fx\n\n", float64(ser.Makespan)/float64(par.Makespan))
	fmt.Println("timeline with sections (F=fft, L=filter, S=stats, M=merge):")
	fmt.Print(par.GanttChart(76))
}
