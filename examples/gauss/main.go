// Gaussian elimination: the classical triangular nest the paper's loop
// model targets — a serial pivot loop enclosing a parallel row-update loop
// whose bound shrinks with the pivot index.
//
// The iteration bodies perform the real arithmetic; the run is verified
// against a sequential elimination, and the scheduling schemes are
// compared on the same matrix.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

const n = 96

func makeMatrix(seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Float64()*2 - 1
		}
		a[i][i] += float64(n) // diagonal dominance: no pivoting needed
	}
	return a
}

func sequential(a [][]float64) {
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			for j := k; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
		}
	}
}

// build returns the elimination as a general parallel nested loop over
// the given matrix.
func build(a [][]float64) *repro.Nest {
	return repro.MustBuild(func(b *repro.B) {
		b.Serial("PIVOT", repro.Const(n-1), func(b *repro.B) {
			// Under pivot k (1-based), rows k+1..n update in parallel.
			b.DoallLeaf("UPDATE",
				repro.BoundFn(func(iv repro.IVec) int64 { return int64(n) - iv[0] }),
				func(e repro.Env, iv repro.IVec, j int64) {
					k := int(iv[0]) - 1 // pivot row, 0-based
					i := k + int(j)     // updated row, 0-based
					f := a[i][k] / a[k][k]
					for c := k; c < n; c++ {
						a[i][c] -= f * a[k][c]
					}
					e.Work(int64(n-k) * 2) // cost model: row length
				})
		})
	})
}

func maxDiff(a, b [][]float64) float64 {
	var d float64
	for i := range a {
		for j := range a[i] {
			d = math.Max(d, math.Abs(a[i][j]-b[i][j]))
		}
	}
	return d
}

func main() {
	want := makeMatrix(42)
	sequential(want)

	fmt.Printf("Gaussian elimination, %dx%d matrix, serial pivot loop over parallel row updates\n\n", n, n)
	fmt.Printf("%-8s  %9s  %11s  %9s  %s\n", "scheme", "makespan", "utilization", "instances", "max |diff| vs sequential")
	for _, scheme := range []string{"ss", "css:4", "gss", "tss", "fsc"} {
		a := makeMatrix(42)
		prog, err := repro.Compile(build(a))
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.Run(repro.Options{Procs: 8, Scheme: scheme, AccessCost: 10})
		if err != nil {
			log.Fatal(err)
		}
		diff := maxDiff(a, want)
		fmt.Printf("%-8s  %9d  %11.3f  %9d  %g\n",
			res.SchemeName, res.Makespan, res.Utilization, res.Stats.Instances, diff)
		if diff > 1e-9 {
			log.Fatalf("scheme %s produced a wrong elimination (max diff %g)", scheme, diff)
		}
	}
	fmt.Println("\nall schemes reproduce the sequential elimination exactly")
}
