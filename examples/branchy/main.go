// Branchy: IF-THEN-ELSE constructs nested inside parallel loops, the
// paper's motivating source of unpredictable iteration times. Each outer
// iteration classifies a tile of a synthetic image; "edge" tiles take a
// heavy refinement loop, ordinary tiles a light one. Which branch runs is
// data-dependent and unknown at compile time — exactly what static
// scheduling cannot handle and two-level self-scheduling absorbs.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const (
	tiles     = 48
	tileSize  = 64
	heavyCost = 40
	lightCost = 2
)

func main() {
	// A synthetic signal with a few sharp "edges".
	img := make([][]float64, tiles)
	for t := range img {
		img[t] = make([]float64, tileSize)
		for i := range img[t] {
			v := math.Sin(float64(t*tileSize+i) / 30)
			if t%7 == 3 { // a few rough tiles
				v += math.Sin(float64(i) * 2.1)
			}
			img[t][i] = v
		}
	}
	rough := func(t int) bool {
		var energy float64
		for i := 1; i < tileSize; i++ {
			d := img[t][i] - img[t][i-1]
			energy += d * d
		}
		return energy > float64(tileSize)*0.02
	}

	results := make([]float64, tiles)
	passes := make([]int, tiles)
	nest := repro.MustBuild(func(b *repro.B) {
		b.Doall("TILE", repro.Const(tiles), func(b *repro.B) {
			b.If("ROUGH", func(iv repro.IVec) bool { return rough(int(iv[0] - 1)) },
				func(b *repro.B) {
					// Heavy refinement: many smoothing passes per element.
					b.DoallLeaf("HEAVY", repro.Const(tileSize), func(e repro.Env, iv repro.IVec, j int64) {
						t := int(iv[0] - 1)
						v := img[t][j-1]
						for p := 0; p < 64; p++ {
							v = (v + math.Sqrt(math.Abs(v))) / 2
						}
						results[t] += v
						passes[t] = 64
						e.Work(heavyCost)
					})
				},
				func(b *repro.B) {
					b.DoallLeaf("LIGHT", repro.Const(tileSize), func(e repro.Env, iv repro.IVec, j int64) {
						t := int(iv[0] - 1)
						results[t] += img[t][j-1]
						passes[t] = 1
						e.Work(lightCost)
					})
				})
		})
	})

	fmt.Printf("branchy tile classifier: %d tiles x %d elements, %d:%d branch costs\n\n",
		tiles, tileSize, heavyCost, lightCost)
	fmt.Printf("%-8s  %9s  %11s\n", "scheme", "makespan", "utilization")
	for _, scheme := range []string{"css:16", "ss", "gss"} {
		for t := range results {
			results[t] = 0
		}
		res, err := repro.Execute(nest, repro.Options{Procs: 8, Scheme: scheme, AccessCost: 6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %9d  %11.3f\n", res.SchemeName, res.Makespan, res.Utilization)
	}
	heavy := 0
	for t := 0; t < tiles; t++ {
		if passes[t] == 64 {
			heavy++
		}
	}
	fmt.Printf("\n%d of %d tiles took the heavy branch (data-dependent, resolved at run time)\n", heavy, tiles)
}
