// Wavefront: a first-order linear recurrence run as a Doacross loop.
//
//	x[j] = 0.5*x[j-1] + b[j]    (the dependent "head")
//	y[j] = expensive(x[j])      (the independent "tail")
//
// With manual synchronization the body posts the dependence right after
// computing x[j], so the expensive tails overlap across iterations. The
// example sweeps the chunk size to demonstrate the paper's Section-I
// claim: chunking a Doacross loop forfeits about (k-1)/k of the overlap
// ("about four out of five iterations cannot be overlapped" at k=5).
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const (
	n        = 240
	headCost = 10
	tailCost = 90
)

func main() {
	b := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		b[j] = math.Cos(float64(j) / 5)
	}

	// Sequential reference.
	wantX := make([]float64, n+1)
	wantY := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		wantX[j] = 0.5*wantX[j-1] + b[j]
		wantY[j] = tail(wantX[j])
	}

	fmt.Printf("doacross wavefront, n=%d, head=%d tail=%d (overlappable)\n\n", n, headCost, tailCost)
	fmt.Printf("%-6s  %9s  %9s  %s\n", "chunk", "makespan", "slowdown", "overlap lost")
	var t1 float64
	for _, k := range []int64{1, 2, 3, 4, 5, 6, 8} {
		x := make([]float64, n+1)
		y := make([]float64, n+1)
		nest := repro.MustBuild(func(bld *repro.B) {
			bld.DoacrossLeafManual("WAVE", repro.Const(n), 1,
				func(e repro.Env, iv repro.IVec, j int64) {
					e.AwaitDep() // wait for x[j-1]
					x[j] = 0.5*x[j-1] + b[j]
					e.Work(headCost)
					e.PostDep() // x[j] ready: release iteration j+1
					y[j] = tail(x[j])
					e.Work(tailCost)
				})
		})
		res, err := repro.Execute(nest, repro.Options{
			Procs:      8,
			Scheme:     fmt.Sprintf("css:%d", k),
			AccessCost: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		for j := 1; j <= n; j++ {
			if math.Abs(x[j]-wantX[j]) > 1e-12 || math.Abs(y[j]-wantY[j]) > 1e-12 {
				log.Fatalf("chunk %d: wrong recurrence value at j=%d", k, j)
			}
		}
		ms := float64(res.Makespan)
		if k == 1 {
			t1 = ms
		}
		fmt.Printf("%-6d  %9d  %8.2fx  %5.0f%%\n",
			k, res.Makespan, ms/t1, 100*(ms-t1)/float64(n*tailCost))
	}
	fmt.Println("\nat k=5 about 4/5 of the tail work has moved onto the critical path,")
	fmt.Println("matching the paper's introduction example")
}

func tail(x float64) float64 {
	// An arbitrary "expensive" independent computation.
	return math.Sqrt(math.Abs(x)) + x*x
}
