// Quickstart: build a parallel nested loop, compile it, run it under the
// two-level self-scheduling scheme, and print the scheduling report.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A non-perfect nest: an outer Doall over blocks, each block holding
	// an innermost Doall whose bound depends on the block index
	// (triangular work), followed by a scalar summary statement.
	sums := make([]int64, 9) // per-block results (indexes 1..8)
	nest := repro.MustBuild(func(b *repro.B) {
		b.Doall("BLOCK", repro.Const(8), func(b *repro.B) {
			b.DoallLeaf("ROW",
				repro.BoundFn(func(iv repro.IVec) int64 { return iv[0] * 25 }),
				func(e repro.Env, iv repro.IVec, j int64) {
					e.Work(100) // simulated computation: 100 cost units
				})
			b.Stmt("SUMMARY", func(e repro.Env, iv repro.IVec) {
				sums[iv[0]] = iv[0] * 25
				e.Work(20)
			})
		})
	})

	prog, err := repro.Compile(nest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d innermost parallel loops\n\n%s\n", prog.NumLoops(), prog)

	for _, scheme := range []string{"ss", "css:8", "gss"} {
		res, err := prog.Run(repro.Options{
			Procs:  8,
			Scheme: scheme,
			Verify: true, // check against the sequential reference
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s makespan %7d   utilization %.3f   searches %d\n",
			res.SchemeName, res.Makespan, res.Utilization, res.Stats.Searches)
	}

	fmt.Printf("\nper-block results: %v\n", sums[1:])
}
