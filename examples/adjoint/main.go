// Adjoint convolution: the classical decreasing-workload loop. Iteration
// j computes sum_{i=j..n} x[i]*w[i-j], so early iterations carry far more
// work than late ones. Equal chunks misbalance badly; the decreasing-chunk
// schemes (TSS, factoring) and fine-grain SS balance it.
//
// This example compares every low-level scheme on the same real
// computation and reports load imbalance.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const n = 768

func main() {
	x := make([]float64, n+1)
	wgt := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		x[i] = math.Sin(float64(i) / 7)
		wgt[i] = 1 / float64(i)
	}

	// Sequential reference.
	want := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		for i := j; i <= n; i++ {
			want[j] += x[i] * wgt[i-j+1]
		}
	}

	fmt.Printf("adjoint convolution, n=%d (iteration j costs n-j+1 units)\n\n", n)
	fmt.Printf("%-9s  %9s  %11s  %9s  %6s\n", "scheme", "makespan", "utilization", "imbalance", "chunks")
	for _, scheme := range []string{"ss", "css:32", "css:96", "gss", "tss", "fsc"} {
		out := make([]float64, n+1)
		nest := repro.MustBuild(func(b *repro.B) {
			b.DoallLeaf("ADJ", repro.Const(n), func(e repro.Env, iv repro.IVec, j int64) {
				var s float64
				for i := int(j); i <= n; i++ {
					s += x[i] * wgt[i-int(j)+1]
				}
				out[j] = s
				e.Work(int64(n) - j + 1) // declared cost: the real work shape
			})
		})
		res, err := repro.Execute(nest, repro.Options{Procs: 8, Scheme: scheme, AccessCost: 8})
		if err != nil {
			log.Fatal(err)
		}
		for j := 1; j <= n; j++ {
			if math.Abs(out[j]-want[j]) > 1e-12 {
				log.Fatalf("%s: wrong result at j=%d", scheme, j)
			}
		}
		fmt.Printf("%-9s  %9d  %11.3f  %9.3f  %6d\n",
			res.SchemeName, res.Makespan, res.Utilization, imbalance(res.Busy), res.Stats.Chunks)
	}
	fmt.Println("\nall schemes computed identical convolutions; compare imbalance across schemes")
}

func imbalance(busy []int64) float64 {
	var sum, max int64
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(busy)) / float64(sum)
}
