// Edit distance: dynamic programming parallelized by anti-diagonals.
// Cell (i,j) depends on (i-1,j), (i,j-1) and (i-1,j-1) — all on earlier
// anti-diagonals — so a serial loop over diagonals enclosing a Doall over
// the cells of each diagonal is a correct general parallel nested loop.
// The inner bound is a non-monotone function of the outer index (it grows,
// plateaus, then shrinks), exactly the "loop bounds ... can be functions
// of the indexes of outer loops" generality the paper targets.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func sequentialEditDistance(a, b string) int {
	m, n := len(a), len(b)
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
		d[i][0] = i
	}
	for j := 0; j <= n; j++ {
		d[0][j] = j
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+sub(a[i-1], b[j-1]))
		}
	}
	return d[m][n]
}

func sub(x, y byte) int {
	if x == y {
		return 0
	}
	return 1
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func main() {
	a := strings.Repeat("kitten sitting on the parallel machine ", 8)
	b := strings.Repeat("sitting kitten in the serial machines ", 8)
	m, n := len(a), len(b)

	want := sequentialEditDistance(a, b)

	// Parallel DP over the same table.
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
		d[i][0] = i
	}
	for j := 0; j <= n; j++ {
		d[0][j] = j
	}

	m64, n64 := int64(m), int64(n)
	nest := repro.MustBuild(func(bld *repro.B) {
		bld.Serial("DIAG", repro.Const(m64+n64-1), func(bld *repro.B) {
			bld.DoallLeaf("CELLS",
				repro.BoundFn(func(iv repro.IVec) int64 {
					dg := iv[0]
					lo := max64(1, dg-n64+1)
					hi := min64(m64, dg)
					return hi - lo + 1
				}),
				func(e repro.Env, iv repro.IVec, jj int64) {
					dg := iv[0]
					i := max64(1, dg-n64+1) + jj - 1
					j := dg - i + 1
					d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+sub(a[i-1], b[j-1]))
					e.Work(20)
				})
		})
	})

	prog, err := repro.Compile(nest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edit distance by anti-diagonal wavefront: %dx%d table, %d diagonals\n\n", m, n, m+n-1)
	fmt.Printf("%-8s  %9s  %11s\n", "scheme", "makespan", "utilization")
	for _, scheme := range []string{"ss", "css:16", "gss"} {
		// Reset the interior of the table between runs.
		for i := 1; i <= m; i++ {
			for j := 1; j <= n; j++ {
				d[i][j] = 0
			}
		}
		res, err := prog.Run(repro.Options{Procs: 8, Scheme: scheme, AccessCost: 5})
		if err != nil {
			log.Fatal(err)
		}
		if got := d[m][n]; got != want {
			log.Fatalf("scheme %s computed distance %d, want %d", scheme, got, want)
		}
		fmt.Printf("%-8s  %9d  %11.3f\n", res.SchemeName, res.Makespan, res.Utilization)
	}
	fmt.Printf("\nedit distance = %d (matches the sequential DP under every scheme)\n", want)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
