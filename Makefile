GO ?= go

.PHONY: build test bench verify verify-race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x .

# verify is the tier-1 gate: everything builds, every test passes.
verify:
	$(GO) vet ./...
	$(GO) test ./...

# verify-race re-runs the suite under the race detector; the runner,
# run-manager and cancellation paths are exercised concurrently there.
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./...
