GO ?= go

# bench/bench-compare knobs: BENCH_OUT is where `make bench` writes its
# result file; BENCH_BASE is the baseline `make bench-compare` gates
# against (the checked-in seed by default).
REV        := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
BENCH_OUT  ?= BENCH_$(REV).json
BENCH_BASE ?= BENCH_seed.json

.PHONY: build test bench bench-compare bench-smoke bench-go verify verify-race verify-kernel verify-chaos verify-adapt verify-replay verify-claim verify-serve verify-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the reproducible performance suite (internal/benchkit):
# warmup + repeated timed runs per scenario, robust statistics, and a
# schema-versioned result file for the BENCH_*.json trajectory.
bench:
	$(GO) run ./cmd/benchsuite run -o $(BENCH_OUT)

# bench-compare gates the latest result file against the baseline:
# nonzero exit when a gated metric regresses beyond the threshold
# outside the measured noise interval.
bench-compare:
	$(GO) run ./cmd/benchsuite compare $(BENCH_BASE) $(BENCH_OUT)

# bench-smoke is the fast sanity slice CI runs on every push.
bench-smoke:
	$(GO) run ./cmd/benchsuite run -filter smoke -reps 2 -o /tmp/BENCH_smoke.json

# bench-go is the raw `go test -bench` escape hatch (single iteration,
# no statistics — for quick spot checks only).
bench-go:
	$(GO) test -bench=. -benchtime=1x .

# verify is the tier-1 gate: everything builds, every test passes.
verify:
	$(GO) vet ./...
	$(GO) test ./...

# verify-race re-runs the suite under the race detector; the runner,
# run-manager and cancellation paths are exercised concurrently there.
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# verify-kernel gates the execution-kernel seam: both engines must pass
# the enginetest conformance suite (under the race detector, so the real
# engine's memory ordering is checked too), and the virtual engine must
# still reproduce the committed baseline bit-for-bit — the kernel/Engine/
# ChunkCalculator refactor surface may not change a single simulated
# access sequence.
verify-kernel:
	$(GO) test -race ./internal/enginetest/
	$(GO) run ./cmd/benchsuite run -filter '^(flat/(ss|gss)|many/ss)/virtual$$' -reps 2 -o /tmp/BENCH_kernel.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_kernel.json

# verify-chaos gates the fault-tolerance surface: both engines pass the
# chaos conformance suite (deterministic injection, isolate-policy
# coverage, watchdog and panic-path leak regressions) under the race
# detector with shuffled order, and the virtual engine with faults
# disabled still reproduces the committed baseline bit-for-bit.
verify-chaos:
	$(GO) test -race -shuffle=on ./internal/enginetest/ ./internal/core/ ./internal/fault/ ./internal/runmgr/ ./runner/
	$(GO) run ./cmd/benchsuite run -filter '^(flat/(ss|gss)|many/ss)/virtual$$' -reps 2 -o /tmp/BENCH_chaos.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_chaos.json

# verify-replay gates the replayable-runs surface: the resume
# conformance matrix (checkpoint at chunk k × scheme × pool, resumed
# runs bit-identical to uninterrupted ones), the journal decoder's fuzz
# seed corpus, and the flight-recorder/journal/checkpoint stacks under
# the race detector with shuffled order; the virtual engine with the
# recorder disabled still reproduces the committed baseline bit-for-bit
# (the replay seams must cost nothing when off).
verify-replay:
	$(GO) test -race -shuffle=on ./internal/flight/ ./internal/journal/ ./internal/enginetest/ ./internal/core/ ./internal/runmgr/ ./runner/ ./cmd/loopschedd/ ./cmd/loopsched/
	$(GO) test -run FuzzDecode ./internal/journal/
	$(GO) run ./cmd/benchsuite run -filter '^(flat/(ss|gss)|many/ss)/virtual$$' -reps 2 -o /tmp/BENCH_replay.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_replay.json

# verify-claim gates the claim-path surface (batched leases, sharded SW
# words, claim combining): the batched conformance matrix — exactly-once
# across schemes x pools x both engines x batch factors, plus
# checkpoint/resume through a mid-lease pause — runs under the race
# detector with shuffled order alongside the pool/lowsched/machine unit
# suites; and the virtual engine with every knob at its default (batch
# 1, one shard word, combining off) still reproduces the committed
# baseline bit-for-bit — the contention levers must cost nothing, and
# change nothing, when off.
verify-claim:
	$(GO) test -race -shuffle=on ./internal/enginetest/
	$(GO) test -race -shuffle=on -run 'Claim|Lease|Shard|Combin|Batch' ./internal/lowsched/ ./internal/pool/ ./internal/machine/ ./internal/vmachine/ ./internal/core/
	$(GO) run ./cmd/benchsuite run -filter '^(flat/(ss|gss)|many/ss)/virtual$$' -reps 2 -o /tmp/BENCH_claim.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_claim.json

# verify-adapt gates the adaptive-scheduling surface: the auto policy
# passes the full engine conformance matrix and the adapt fitter/
# integration suite under the race detector with shuffled order; the
# benchkit irregular family holds auto within 10% of the best static
# scheme and strictly better than the worst
# (TestIrregularFamilyGatesAuto); and a combined irregular + classic
# virtual slice is compared against the committed baseline — adaptive
# scenarios are exempt from cross-file bit-identity (the fitter
# trajectory is the algorithm under development), the static virtual
# scenarios are not.
verify-adapt:
	$(GO) test -race -shuffle=on ./internal/enginetest/ ./internal/adapt/ ./internal/benchkit/
	$(GO) run ./cmd/benchsuite run -filter '^(irregular/|(flat/(ss|gss)|many/ss)/virtual$$)' -reps 2 -o /tmp/BENCH_adapt.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_adapt.json

# verify-serve gates the multi-tenant serving surface: the scheduler
# seam (FIFO golden sequence, WFQ weighted shares, priority preemption
# with exact resume), budget conformance on both engines, tenant
# admission and auth, and the loadcheck workload-checks suite — all
# under the race detector with shuffled order; and the virtual engine
# with scheduler=fifo, no budgets and no tenants still reproduces the
# committed baseline bit-for-bit — the serving seams must cost nothing,
# and change nothing, when off.
verify-serve:
	$(GO) test -race -shuffle=on ./internal/runmgr/ ./runner/ ./cmd/loopschedd/ ./internal/loadcheck/
	$(GO) test -race -shuffle=on -run 'Budget' ./internal/enginetest/ ./internal/core/ .
	$(GO) run ./cmd/benchsuite run -filter '^(flat/(ss|gss)|many/ss)/virtual$$' -reps 2 -o /tmp/BENCH_serve.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_serve.json

# verify-cluster gates the resilient-cluster surface: the hardened RPC
# layer (per-attempt deadlines, retry budgets, per-peer breakers,
# deterministic fault injection), membership state machines, the
# three-node placement/proxy/failover chaos suite (seeded faults plus
# a node kill mid-run), the enginetest failover-restore matrix, and
# the journal power-cut fuzz — all under the race detector with
# shuffled order; and the virtual engine with clustering off still
# reproduces the committed baseline bit-for-bit — the cluster seams
# must cost nothing, and change nothing, when off.
verify-cluster:
	$(GO) test -race -shuffle=on ./internal/cluster/ ./cmd/loopschedd/ ./internal/journal/
	$(GO) test -race -shuffle=on -run 'Failover' ./internal/enginetest/
	$(GO) run ./cmd/benchsuite run -filter '^(flat/(ss|gss)|many/ss)/virtual$$' -reps 2 -o /tmp/BENCH_cluster.json
	$(GO) run ./cmd/benchsuite compare -bit-identical $(BENCH_BASE) /tmp/BENCH_cluster.json
